"""Batch-vs-incremental equivalence harness for the ingestion tier (repro.feeds).

The incremental tier extends the library's two-tier protocol from *row vs
encoded* to *batch vs incremental*: the batch recompute over base+delta is
the reference, ``refresh(merged)`` is the delta tier, and the two must be
**bit-identical** — float bits, row order, column order, vocabulary order.
This harness pins that contract for appends (extended encodings vs cold
encodes), group-bys/cubes/KPI boards, quality profiles, the columnar triple
index, the chunked readers and feed connector, and the ``repro ingest`` CLI
end to end against a live server.
"""

from __future__ import annotations

import json
import struct
import threading
import urllib.request

import numpy as np
import pytest

from repro.bi import KPI, Cube, Dimension, Measure, evaluate_kpis_by_level
from repro.exceptions import FeedError, FeedTransientError, LODError, OLAPError, ReproError, SchemaError
from repro.feeds import (
    FeedConnector,
    FixtureFeed,
    IncrementalGroupBy,
    IncrementalKPIBoard,
    IncrementalProfile,
    append_dataset,
    append_rows,
    incremental_cube_aggregate,
    read_csv_chunks,
    read_jsonl,
    read_jsonl_chunks,
)
import repro.feeds.incremental as incremental_module
from repro.quality import measure_quality
from repro.quality.completeness import CompletenessCriterion
from repro.tabular import read_csv, write_csv
from repro.tabular.dataset import ColumnType, Dataset
from repro.tabular.encoded import _CACHE_ATTR, encode_dataset
from repro.tabular.transforms import group_by

AGGREGATIONS = ("sum", "mean", "min", "max", "count", "std", "median")


# ---------------------------------------------------------------------------
# Comparison helpers
# ---------------------------------------------------------------------------

def _bits(value):
    """A bit-exact comparison key: floats by their IEEE-754 bytes."""
    if isinstance(value, float):
        return ("float", struct.pack("<d", value))
    return (type(value).__name__, value)


def _assert_identical_datasets(a: Dataset, b: Dataset):
    """Exact equality: column names/order, ctypes, row order, float bits."""
    assert a.column_names == b.column_names, f"column order {a.column_names} != {b.column_names}"
    assert a.n_rows == b.n_rows, f"row count {a.n_rows} != {b.n_rows}"
    for name in a.column_names:
        ca, cb = a[name], b[name]
        assert ca.ctype == cb.ctype, f"{name}: ctype {ca.ctype} != {cb.ctype}"
        for i, (x, y) in enumerate(zip(ca.tolist(), cb.tolist())):
            assert _bits(x) == _bits(y), f"{name}[{i}]: {x!r} != {y!r}"


def _assert_identical_profiles(a, b):
    """Profiles compared through their canonical JSON form (float-exact repr)."""
    assert json.dumps(a.to_json_dict(), sort_keys=True) == json.dumps(b.to_json_dict(), sort_keys=True)


def _assert_identical_encodings(merged: Dataset, reference: Dataset):
    """The merged dataset's cached views equal a cold encode, bit for bit."""
    seeded = getattr(merged, _CACHE_ATTR, None)
    assert seeded is not None and seeded.dataset is merged
    cold = encode_dataset(reference)
    for column in merged.columns:
        if column.is_numeric():
            values, missing = seeded.numeric_view(column.name)
            c_values, c_missing = cold.numeric_view(column.name)
            assert np.array_equal(values, c_values, equal_nan=True)
            assert np.array_equal(missing, c_missing)
        else:
            codes, vocabulary, index = seeded.codes_view(column.name)
            c_codes, c_vocab, c_index = cold.codes_view(column.name)
            assert vocabulary == c_vocab
            assert index == c_index
            assert np.array_equal(codes, c_codes)


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------

def _base_rows(n: int, seed: int = 0, categories=("a", "b", "c")) -> list[dict]:
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        rows.append(
            {
                "region": None if rng.random() < 0.05 else str(rng.choice(list(categories))),
                "year": int(2020 + i % 3),
                "amount": None if rng.random() < 0.08 else float(np.round(rng.normal(100, 30), 3)),
                "score": float(np.round(rng.random(), 6)),
            }
        )
    return rows


def _base_dataset(n: int = 200, seed: int = 0, name: str = "budget") -> Dataset:
    return Dataset.from_rows(_base_rows(n, seed=seed), name=name)


def _delta_rows(n: int, seed: int = 99) -> list[dict]:
    # New category level, some all-missing cells, to stress vocabulary extension.
    rows = _base_rows(n, seed=seed, categories=("b", "dNEW", "a"))
    if rows:
        rows[0]["amount"] = None
        rows[0]["region"] = None
    return rows


def _cold(dataset: Dataset) -> Dataset:
    """A structurally identical dataset with no cached encoding (cold copy)."""
    clone = Dataset.from_rows(
        list(dataset.iter_rows()),
        name=dataset.name,
        ctypes={c.name: c.ctype for c in dataset.columns},
        roles={c.name: c.role for c in dataset.columns},
        column_order=dataset.column_names,
    )
    return clone


# ---------------------------------------------------------------------------
# Appends and encoded-view extension
# ---------------------------------------------------------------------------

class TestAppend:
    def test_append_rows_matches_cold_encode(self):
        base = _base_dataset(150)
        encode_dataset(base)
        merged = append_rows(base, _delta_rows(40))
        assert merged.n_rows == 190
        _assert_identical_encodings(merged, _cold(merged))

    def test_append_dataset_extends_instead_of_reencoding(self, monkeypatch):
        base = _base_dataset(120)
        base_encoded = encode_dataset(base)
        for column in base.columns:  # materialise the views the append must extend
            if column.is_numeric():
                base_encoded.numeric_view(column.name)
            else:
                base_encoded.codes_view(column.name)
        delta = Dataset.from_rows(
            _delta_rows(30),
            ctypes={c.name: c.ctype for c in base.columns},
            column_order=base.column_names,
            name="delta",
        )
        encode_dataset(delta)
        merged = append_dataset(base, delta)
        seeded = getattr(merged, _CACHE_ATTR)

        def _boom(self, name):  # pragma: no cover - only runs on regression
            raise AssertionError(f"column {name!r} was re-encoded after append")

        monkeypatch.setattr(type(seeded), "_encode_numeric", _boom)
        monkeypatch.setattr(type(seeded), "_encode_categorical", _boom)
        for column in merged.columns:
            if column.is_numeric():
                seeded.numeric_view(column.name)
            else:
                seeded.codes_view(column.name)

    def test_vocabulary_is_append_stable(self):
        base = _base_dataset(100)
        base_vocab = encode_dataset(base).codes_view("region")[1]
        merged = append_rows(base, _delta_rows(25))
        vocab = getattr(merged, _CACHE_ATTR).codes_view("region")[1]
        assert vocab[: len(base_vocab)] == base_vocab
        assert "dNEW" in vocab

    def test_empty_delta_returns_base(self):
        base = _base_dataset(20)
        assert append_rows(base, []) is base

    def test_unknown_column_is_schema_error(self):
        base = _base_dataset(10)
        with pytest.raises(SchemaError, match="unknown column"):
            append_rows(base, [{"region": "a", "bogus": 1}])

    def test_uncoercible_cell_is_schema_error(self):
        base = _base_dataset(10)
        with pytest.raises(SchemaError, match="schema-incompatible rows"):
            append_rows(base, [{"amount": "not-a-number"}])

    def test_mismatched_columns_is_schema_error(self):
        base = _base_dataset(10)
        other = Dataset.from_rows([{"x": 1.0}], name="other")
        with pytest.raises(SchemaError, match="schema-incompatible delta"):
            append_dataset(base, other)

    def test_mismatched_ctype_is_schema_error(self):
        base = _base_dataset(10)
        rows = list(base.iter_rows())[:3]
        delta = Dataset.from_rows(
            rows,
            ctypes={"region": ColumnType.CATEGORICAL, "year": ColumnType.NUMERIC,
                    "amount": ColumnType.NUMERIC, "score": ColumnType.STRING},
            column_order=base.column_names,
        )
        with pytest.raises(SchemaError, match="schema-incompatible delta"):
            append_dataset(base, delta)

    def test_all_missing_delta_block(self):
        base = _base_dataset(60)
        encode_dataset(base)
        merged = append_rows(base, [{} for _ in range(5)])
        assert merged.n_rows == 65
        _assert_identical_encodings(merged, _cold(merged))

    def test_repeated_appends_stay_identical(self):
        merged = _base_dataset(80)
        encode_dataset(merged)
        for seed in (7, 8, 9):
            merged = append_rows(merged, _delta_rows(15, seed=seed))
        assert merged.n_rows == 125
        _assert_identical_encodings(merged, _cold(merged))


# ---------------------------------------------------------------------------
# Chunked readers
# ---------------------------------------------------------------------------

class TestChunkedReaders:
    @pytest.fixture()
    def csv_file(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(_base_dataset(97), path)
        return path

    def test_csv_chunks_reproduce_read_csv(self, csv_file):
        whole = read_csv(csv_file)
        blocks = list(read_csv_chunks(csv_file, chunk_rows=10))
        assert [b.n_rows for b in blocks] == [10] * 9 + [7]
        combined = blocks[0]
        for block in blocks[1:]:
            combined = combined.concat(block)
        combined.name = whole.name
        _assert_identical_datasets(combined, whole)

    def test_csv_chunks_single_block(self, csv_file):
        blocks = list(read_csv_chunks(csv_file, chunk_rows=1000))
        assert len(blocks) == 1 and blocks[0].n_rows == 97

    def test_csv_chunk_rows_must_be_positive(self, csv_file):
        with pytest.raises(SchemaError, match="chunk_rows"):
            next(read_csv_chunks(csv_file, chunk_rows=0))

    def test_csv_empty_file_is_an_error(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(SchemaError, match="empty CSV content"):
            list(read_csv_chunks(path))

    def test_csv_header_only_is_an_error(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n", encoding="utf-8")
        with pytest.raises(SchemaError, match="header row and at least one data row"):
            list(read_csv_chunks(path))

    def test_csv_overlong_row_is_an_error(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2,3\n", encoding="utf-8")
        with pytest.raises(SchemaError, match="salvage"):
            list(read_csv_chunks(path))

    def test_csv_blank_rows_and_padding(self, tmp_path):
        path = tmp_path / "padded.csv"
        path.write_text("a,b\n1,2\n\n3\n", encoding="utf-8")
        blocks = list(read_csv_chunks(path, chunk_rows=100))
        rows = list(blocks[0].iter_rows())
        assert len(rows) == 2
        padded = rows[1]["b"]
        assert padded is None or padded != padded  # missing: None or nan

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        rows = _base_rows(41, seed=3)
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n", encoding="utf-8")
        whole = read_jsonl(path)
        assert whole.n_rows == 41
        assert whole.column_names == ["region", "year", "amount", "score"]
        blocks = list(read_jsonl_chunks(path, chunk_rows=8))
        assert [b.n_rows for b in blocks] == [8] * 5 + [1]

    def test_jsonl_missing_tokens_normalised(self, tmp_path):
        path = tmp_path / "na.jsonl"
        path.write_text('{"a": "NA", "b": 1}\n{"a": "x", "b": 2}\n', encoding="utf-8")
        dataset = read_jsonl(path)
        assert dataset["a"].tolist()[0] is None

    def test_jsonl_malformed_line_is_an_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\n{broken\n', encoding="utf-8")
        with pytest.raises(SchemaError, match="malformed JSON on line 2"):
            list(read_jsonl_chunks(path))

    def test_jsonl_non_object_line_is_an_error(self, tmp_path):
        path = tmp_path / "list.jsonl"
        path.write_text("[1, 2]\n", encoding="utf-8")
        with pytest.raises(SchemaError, match="not an object"):
            list(read_jsonl_chunks(path))

    def test_jsonl_nested_value_is_an_error(self, tmp_path):
        path = tmp_path / "nested.jsonl"
        path.write_text('{"a": {"deep": 1}}\n', encoding="utf-8")
        with pytest.raises(SchemaError, match="nested"):
            list(read_jsonl_chunks(path))

    def test_jsonl_late_unknown_key_is_an_error(self, tmp_path):
        path = tmp_path / "drift.jsonl"
        path.write_text('{"a": 1}\n{"a": 2, "b": 3}\n', encoding="utf-8")
        with pytest.raises(SchemaError, match="unknown column"):
            list(read_jsonl_chunks(path, chunk_rows=1))

    def test_jsonl_empty_file_is_an_error(self, tmp_path):
        path = tmp_path / "none.jsonl"
        path.write_text("\n\n", encoding="utf-8")
        with pytest.raises(SchemaError, match="contains no records"):
            list(read_jsonl_chunks(path))


# ---------------------------------------------------------------------------
# Feed connector
# ---------------------------------------------------------------------------

def _write_feed(directory, batches):
    directory.mkdir(exist_ok=True)
    for i, batch in enumerate(batches):
        (directory / f"batch-{i:03d}.jsonl").write_text(
            "\n".join(json.dumps(r) for r in batch) + "\n", encoding="utf-8"
        )
    return directory


class _FlakyFeed(FixtureFeed):
    """A fixture feed that fails transiently a set number of times."""

    def __init__(self, root, failures: int):
        super().__init__(root)
        self.failures = failures
        self.attempts = 0

    def page(self, offset, limit, since=None):
        self.attempts += 1
        if self.failures > 0:
            self.failures -= 1
            raise FeedTransientError("simulated outage")
        return super().page(offset, limit, since=since)


class TestConnector:
    @pytest.fixture()
    def feed_dir(self, tmp_path):
        records = [
            {"region": f"r{i % 3}", "amount": float(i), "datum": f"2026-08-{i + 1:02d}"}
            for i in range(9)
        ]
        return _write_feed(tmp_path / "feed", [records[:4], records[4:]])

    def test_batches_consumed_in_sorted_order(self, feed_dir):
        feed = FixtureFeed(feed_dir)
        assert [p.name for p in feed.batch_paths] == ["batch-000.jsonl", "batch-001.jsonl"]
        records = FeedConnector(feed, page_size=4).records()
        assert [r["amount"] for r in records] == [float(i) for i in range(9)]

    def test_single_file_feed(self, feed_dir):
        feed = FixtureFeed(feed_dir / "batch-000.jsonl")
        assert len(feed.page(0, 100)) == 4

    def test_cursor_filtering(self, feed_dir):
        connector = FeedConnector(FixtureFeed(feed_dir), page_size=100)
        records = connector.records(since="2026-08-06")
        assert [r["datum"] for r in records] == ["2026-08-07", "2026-08-08", "2026-08-09"]

    def test_pages_stop_on_short_page(self, feed_dir):
        pages = list(FeedConnector(FixtureFeed(feed_dir), page_size=4).pages())
        assert [len(p) for p in pages] == [4, 4, 1]

    def test_throttle_sleeps_between_pages_only(self, feed_dir):
        waits = []
        connector = FeedConnector(
            FixtureFeed(feed_dir), page_size=4, throttle=1.5, _sleep=waits.append
        )
        list(connector.pages())
        assert waits == [1.5, 1.5]

    def test_transient_failures_are_retried(self, feed_dir):
        waits = []
        feed = _FlakyFeed(feed_dir, failures=2)
        connector = FeedConnector(feed, page_size=100, retry_wait=0.25, _sleep=waits.append)
        assert len(connector.records()) == 9
        assert waits == [0.25, 0.25]

    def test_exhausted_retries_raise_feed_error(self, feed_dir):
        feed = _FlakyFeed(feed_dir, failures=10)
        connector = FeedConnector(feed, max_retries=2, _sleep=lambda _: None)
        with pytest.raises(FeedError, match="after 2 retries"):
            connector.records()

    def test_invalid_parameters(self, feed_dir):
        with pytest.raises(FeedError, match="page_size"):
            FeedConnector(FixtureFeed(feed_dir), page_size=0)
        with pytest.raises(FeedError, match="max_retries"):
            FeedConnector(FixtureFeed(feed_dir), max_retries=-1)

    def test_missing_fixture_is_feed_error(self, tmp_path):
        with pytest.raises(FeedError, match="does not exist"):
            FixtureFeed(tmp_path / "nope")
        (tmp_path / "empty").mkdir()
        with pytest.raises(FeedError, match="no .jsonl batch files"):
            FixtureFeed(tmp_path / "empty")

    def test_malformed_fixture_is_feed_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{oops\n", encoding="utf-8")
        with pytest.raises(FeedError, match="malformed JSON"):
            FixtureFeed(path).page(0, 10)

    def test_fetch_dataset(self, feed_dir):
        connector = FeedConnector(FixtureFeed(feed_dir))
        dataset = connector.fetch_dataset(name="delta")
        assert dataset.n_rows == 9 and dataset.name == "delta"
        assert connector.fetch_dataset(since="2027-01-01") is None


# ---------------------------------------------------------------------------
# Incremental group-by / cube / KPI board
# ---------------------------------------------------------------------------

class TestIncrementalGroupBy:
    AGGS = {f"amount_{agg}": ("amount", agg) for agg in AGGREGATIONS}

    def test_refresh_is_bit_identical_for_every_aggregation(self):
        base = _base_dataset(200)
        board = IncrementalGroupBy(base, ["region", "year"], self.AGGS)
        assert board.incremental
        merged = append_rows(base, _delta_rows(50))
        _assert_identical_datasets(
            board.refresh(merged), group_by(_cold(merged), ["region", "year"], self.AGGS)
        )

    def test_initial_result_matches_group_by(self):
        base = _base_dataset(120)
        board = IncrementalGroupBy(base, ["region"], self.AGGS)
        _assert_identical_datasets(board.result(), group_by(base, ["region"], self.AGGS))

    def test_sequential_refreshes(self):
        merged = _base_dataset(100)
        board = IncrementalGroupBy(merged, ["region"], self.AGGS)
        for seed in (5, 6, 7):
            merged = append_rows(merged, _delta_rows(20, seed=seed))
            result = board.refresh(merged)
        _assert_identical_datasets(result, group_by(_cold(merged), ["region"], self.AGGS))

    def test_empty_delta_refresh(self):
        base = _base_dataset(60)
        board = IncrementalGroupBy(base, ["region"], self.AGGS)
        _assert_identical_datasets(board.refresh(base), group_by(base, ["region"], self.AGGS))

    def test_force_full_refresh_routes_to_group_by(self, monkeypatch):
        base = _base_dataset(50)
        board = IncrementalGroupBy(base, ["region"], {"total": ("amount", "sum")})
        merged = append_rows(base, _delta_rows(10))
        calls = []
        real = incremental_module.group_by

        def _spy(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(incremental_module, "group_by", _spy)
        board.refresh(merged)
        assert not calls  # incremental path: no batch group_by
        board._force_full_refresh = True
        merged2 = append_rows(merged, _delta_rows(5, seed=3))
        result = board.refresh(merged2)
        assert len(calls) == 1
        _assert_identical_datasets(result, real(_cold(merged2), ["region"], {"total": ("amount", "sum")}))

    def test_forced_instance_can_resume_incrementally(self):
        base = _base_dataset(50)
        board = IncrementalGroupBy(base, ["region"], self.AGGS)
        board._force_full_refresh = True
        merged = append_rows(base, _delta_rows(10))
        board.refresh(merged)
        board._force_full_refresh = False
        merged2 = append_rows(merged, _delta_rows(10, seed=4))
        _assert_identical_datasets(
            board.refresh(merged2), group_by(_cold(merged2), ["region"], self.AGGS)
        )

    def test_non_numeric_source_falls_back(self, monkeypatch):
        # A STRING source column (numeric-looking cells) cannot be folded:
        # the reference coerces each cell with float(v) at aggregation time.
        rows = [{"g": f"k{i % 3}", "v": str(i)} for i in range(30)]
        ctypes = {"g": ColumnType.CATEGORICAL, "v": ColumnType.STRING}
        base = Dataset.from_rows(rows, name="strs", ctypes=ctypes)
        board = IncrementalGroupBy(base, ["g"], {"n": ("v", "sum")})
        assert not board.incremental
        calls = []
        real = incremental_module.group_by
        monkeypatch.setattr(
            incremental_module, "group_by",
            lambda *a, **k: calls.append(a) or real(*a, **k),
        )
        delta = Dataset.from_rows(
            [{"g": "k9", "v": str(100 + i)} for i in range(5)], ctypes=ctypes
        )
        merged = append_dataset(base, delta)
        result = board.refresh(merged)
        assert len(calls) == 1
        _assert_identical_datasets(result, real(_cold(merged), ["g"], {"n": ("v", "sum")}))

    def test_validation_matches_group_by(self):
        base = _base_dataset(10)
        with pytest.raises(SchemaError, match="unknown group-by key"):
            IncrementalGroupBy(base, ["ghost"], self.AGGS)
        with pytest.raises(SchemaError, match="unknown column"):
            IncrementalGroupBy(base, ["region"], {"x": ("ghost", "sum")})
        with pytest.raises(SchemaError, match="unknown aggregation"):
            IncrementalGroupBy(base, ["region"], {"x": ("amount", "mode")})

    def test_refresh_target_validation(self):
        base = _base_dataset(30)
        board = IncrementalGroupBy(base, ["region"], self.AGGS)
        with pytest.raises(SchemaError, match="columns"):
            board.refresh(Dataset.from_rows([{"x": 1.0}]))
        with pytest.raises(SchemaError, match="fewer than"):
            board.refresh(base.head(5))


class TestIncrementalCubeAndKPIs:
    def _cube(self, dataset, name="budget"):
        return Cube(
            dataset,
            dimensions=[Dimension("geo", ("region",)), Dimension("time", ("year",))],
            measures=[Measure("total", "amount", "sum"), Measure("avg_score", "score", "mean")],
            name=name,
        )

    def test_cube_aggregate_refresh_matches_batch(self):
        base = _base_dataset(150)
        board = incremental_cube_aggregate(self._cube(base), ["region", "year"])
        merged = append_rows(base, _delta_rows(40))
        _assert_identical_datasets(
            board.refresh(merged), self._cube(_cold(merged)).aggregate(["region", "year"])
        )

    def test_empty_levels_is_an_error(self):
        with pytest.raises(OLAPError, match="at least one level"):
            incremental_cube_aggregate(self._cube(_base_dataset(10)), [])

    def test_force_row_olap_pins_full_refresh(self):
        cube = self._cube(_base_dataset(10))
        cube._force_row_olap = True
        assert incremental_cube_aggregate(cube, ["region"])._force_full_refresh

    def test_kpi_board_refresh_matches_batch(self):
        kpis = [
            KPI("spend", "amount", target=100.0, higher_is_better=False, tolerance=0.2),
            KPI("quality", "score", target=0.5),
        ]
        base = _base_dataset(150)
        board = IncrementalKPIBoard(kpis, self._cube(base), "region")
        merged = append_rows(base, _delta_rows(40))
        refreshed = board.refresh(merged)
        batch = evaluate_kpis_by_level(kpis, self._cube(_cold(merged)), "region")
        _assert_identical_datasets(refreshed, batch)
        _assert_identical_datasets(board.result(), batch)

    def test_kpi_board_forced_refresh_matches_batch(self, monkeypatch):
        kpis = [KPI("spend", "amount", target=100.0)]
        base = _base_dataset(60)
        board = IncrementalKPIBoard(kpis, self._cube(base), "region")
        board._force_full_refresh = True
        calls = []
        real = incremental_module.group_by
        monkeypatch.setattr(
            incremental_module, "group_by",
            lambda *a, **k: calls.append(a) or real(*a, **k),
        )
        merged = append_rows(base, _delta_rows(15))
        refreshed = board.refresh(merged)
        assert len(calls) == 1
        assert not board._grouped._force_full_refresh  # restored after the forced pass
        _assert_identical_datasets(
            refreshed, evaluate_kpis_by_level(kpis, self._cube(_cold(merged)), "region")
        )

    def test_kpi_validation_matches_batch_evaluator(self):
        cube = self._cube(_base_dataset(10))
        with pytest.raises(ReproError, match="no KPIs"):
            IncrementalKPIBoard([], cube, "region")
        with pytest.raises(ReproError, match="callable"):
            IncrementalKPIBoard([KPI("f", lambda d: 1.0, target=1.0)], cube, "region")
        with pytest.raises(ReproError, match="unknown column"):
            IncrementalKPIBoard([KPI("g", "ghost", target=1.0)], cube, "region")
        with pytest.raises(ReproError, match="non-numeric"):
            IncrementalKPIBoard([KPI("r", "region", target=1.0)], cube, "region")
        with pytest.raises(ReproError, match="collides"):
            IncrementalKPIBoard([KPI("region", "amount", target=1.0)], cube, "region")


# ---------------------------------------------------------------------------
# Incremental quality profiles
# ---------------------------------------------------------------------------

class TestIncrementalProfile:
    def test_refresh_matches_measure_quality_all_criteria(self):
        base = _base_dataset(150)
        profile = IncrementalProfile(base)
        merged = append_rows(base, _delta_rows(40))
        _assert_identical_profiles(profile.refresh(merged), measure_quality(_cold(merged)))

    def test_routing_split(self):
        profile = IncrementalProfile(_base_dataset(30))
        assert set(profile.incremental_criteria) == {
            "completeness", "duplication", "balance", "dimensionality",
        }
        assert set(profile.fallback_criteria) == {
            "accuracy", "consistency", "correlation", "outliers",
        }

    def test_sequential_refreshes(self):
        merged = _base_dataset(100)
        profile = IncrementalProfile(merged)
        for seed in (11, 12):
            merged = append_rows(merged, _delta_rows(25, seed=seed))
            refreshed = profile.refresh(merged)
        _assert_identical_profiles(refreshed, measure_quality(_cold(merged)))

    def test_initial_profile_matches_measure_quality(self):
        base = _base_dataset(80)
        _assert_identical_profiles(IncrementalProfile(base).profile(), measure_quality(_cold(base)))

    def test_balance_with_categorical_target(self):
        base = _base_dataset(120).set_target("region")
        profile = IncrementalProfile(base, criteria=["balance"])
        assert profile.incremental_criteria == ["balance"]
        merged = append_rows(base, _delta_rows(30))
        _assert_identical_profiles(
            profile.refresh(merged), measure_quality(_cold(merged), ["balance"])
        )

    def test_balance_with_numeric_target_falls_back(self):
        base = _base_dataset(60).set_target("amount")
        profile = IncrementalProfile(base, criteria=["balance"])
        assert profile.fallback_criteria == ["balance"]
        merged = append_rows(base, _delta_rows(20))
        _assert_identical_profiles(
            profile.refresh(merged), measure_quality(_cold(merged), ["balance"])
        )

    def test_force_row_criterion_falls_back(self):
        criterion = CompletenessCriterion()
        criterion._force_row_measure = True
        profile = IncrementalProfile(_base_dataset(40), criteria=[criterion])
        assert profile.fallback_criteria == ["completeness"]

    def test_subclassed_criterion_falls_back(self):
        class CustomCompleteness(CompletenessCriterion):
            pass

        profile = IncrementalProfile(_base_dataset(40), criteria=[CustomCompleteness()])
        assert profile.fallback_criteria == ["completeness"]
        merged = append_rows(profile._dataset, _delta_rows(10))
        _assert_identical_profiles(
            profile.refresh(merged), measure_quality(_cold(merged), [CustomCompleteness()])
        )

    def test_force_full_refresh_routes_to_measure_quality(self, monkeypatch):
        base = _base_dataset(50)
        profile = IncrementalProfile(base, criteria=["completeness", "balance"])
        calls = []
        real = incremental_module.measure_quality
        monkeypatch.setattr(
            incremental_module, "measure_quality",
            lambda *a, **k: calls.append(a) or real(*a, **k),
        )
        merged = append_rows(base, _delta_rows(10))
        profile.refresh(merged)
        assert not calls
        profile._force_full_refresh = True
        merged2 = append_rows(merged, _delta_rows(10, seed=2))
        refreshed = profile.refresh(merged2)
        assert len(calls) == 1
        _assert_identical_profiles(
            refreshed, real(_cold(merged2), ["completeness", "balance"])
        )

    def test_refresh_target_validation(self):
        profile = IncrementalProfile(_base_dataset(30))
        with pytest.raises(SchemaError, match="fewer than"):
            profile.refresh(_base_dataset(10))

    def test_balance_without_discrete_columns(self):
        rows = [{"x": float(i), "y": float(i * 2)} for i in range(20)]
        base = Dataset.from_rows(rows, name="nums")
        profile = IncrementalProfile(base, criteria=["balance"])
        merged = append_rows(base, [{"x": 1.0, "y": 2.0}])
        _assert_identical_profiles(
            profile.refresh(merged), measure_quality(_cold(merged), ["balance"])
        )


# ---------------------------------------------------------------------------
# Columnar triple-index appends
# ---------------------------------------------------------------------------

def _graph_triples(n: int, prefix: str = "s"):
    from repro.lod.terms import IRI, Literal, Triple

    triples = []
    for i in range(n):
        subject = IRI(f"http://ex/{prefix}{i}")
        triples.append(Triple(subject, IRI("http://ex/p"), Literal(str(i))))
        triples.append(Triple(subject, IRI("http://ex/q"), IRI(f"http://ex/o{i % 5}")))
    return triples


class TestTripleStoreAppend:
    def _store(self, n=30):
        from repro.lod.triples import TripleStore

        store = TripleStore()
        for triple in _graph_triples(n):
            store.add(triple)
        return store

    def test_append_extends_snapshot_bit_identically(self):
        from repro.lod.triples import TripleStore

        store = self._store(30)
        snapshot = store.columnar()
        snapshot.order("spo")  # materialise the primary order + blocks
        added = store.append(_graph_triples(10, prefix="new"))
        assert added == 20
        assert store.columnar() is snapshot  # kept, not rebuilt
        reference = TripleStore()
        for triple in _graph_triples(30):
            reference.add(triple)
        for triple in _graph_triples(10, prefix="new"):
            reference.add(triple)
        fresh = reference.columnar()
        assert snapshot.terms == fresh.terms
        for kind in ("spo", "pos", "osp"):
            for extended, rebuilt in zip(snapshot.order(kind), fresh.order(kind)):
                assert np.array_equal(extended, rebuilt)
            for extended, rebuilt in zip(snapshot._block_table(kind), fresh._block_table(kind)):
                assert np.array_equal(extended, rebuilt)

    def test_append_existing_subject_falls_back(self):
        from repro.lod.terms import IRI, Literal, Triple

        store = self._store(10)
        snapshot = store.columnar()
        # A new triple under an existing subject would grow SPO mid-array, so
        # the append falls back to update() and invalidates the snapshot.
        added = store.append([Triple(IRI("http://ex/s0"), IRI("http://ex/extra"), Literal("x"))])
        assert added == 1
        assert store._columnar is not snapshot

    def test_append_duplicates_keep_snapshot(self):
        store = self._store(10)
        snapshot = store.columnar()
        assert store.append(_graph_triples(3)) == 0  # all already present
        assert store._columnar is snapshot

    def test_append_force_rebuild_invalidates(self):
        store = self._store(10)
        store.columnar()
        store.append(_graph_triples(2, prefix="fresh"), _force_rebuild=True)
        assert store._columnar is None

    def test_append_rejects_non_triples(self):
        store = self._store(5)
        with pytest.raises(LODError, match="expects Triples"):
            store.append(["not-a-triple"])


# ---------------------------------------------------------------------------
# Ingest CLI end to end
# ---------------------------------------------------------------------------

class TestIngestEndToEnd:
    def test_ingest_append_reload_parity(self, tmp_path):
        """Feed batch → `repro ingest` → atomic store replace → /reload → served
        bytes match a direct library call over the merged data."""
        from repro.cli import main
        from repro.serve import create_server
        from repro.serve.endpoints import encode_response, evaluate

        rows = [
            {"region": f"r{i % 4}", "year": 2020 + i % 3, "amount": float(i),
             "datum": f"2026-07-{i % 28 + 1:02d}"}
            for i in range(50)
        ]
        store = tmp_path / "budget.rps"
        Dataset.from_rows(rows, name="budget").save(store)
        delta = [
            {"region": f"r{i % 5}", "year": 2023, "amount": float(100 + i),
             "datum": f"2026-08-{i + 1:02d}"}
            for i in range(10)
        ]
        feed_dir = _write_feed(tmp_path / "feed", [delta[:6], delta[6:]])

        server = create_server(stores=[str(store)], port=0)
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        thread.start()
        try:
            with urllib.request.urlopen(f"{server.url}/profile?dataset=budget") as response:
                fingerprint_before = response.headers["X-Repro-Fingerprint"]
            code = main(
                ["ingest", str(feed_dir), str(store),
                 "--since", "2026-08-03", "--limit", "4", "--reload-url", server.url]
            )
            assert code == 0
            with urllib.request.urlopen(f"{server.url}/profile?dataset=budget") as response:
                assert response.headers["X-Repro-Fingerprint"] != fingerprint_before
                served = response.read()
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=10)

        merged = Dataset.open(store)
        try:
            assert merged.n_rows == 57  # 50 base + the 7 records after the cursor
            direct = encode_response(evaluate("/profile", merged, {"dataset": "budget"}, None))
        finally:
            merged.close()
        assert served == direct

    def test_ingest_empty_delta_leaves_store_unchanged(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "d.rps"
        Dataset.from_rows([{"a": 1.0, "datum": "2026-01-01"}], name="d").save(store)
        before = store.read_bytes()
        feed = _write_feed(tmp_path / "feed", [[{"a": 2.0, "datum": "2026-01-02"}]])
        assert main(["ingest", str(feed), str(store), "--since", "2027-01-01"]) == 0
        assert "store unchanged" in capsys.readouterr().out
        assert store.read_bytes() == before
