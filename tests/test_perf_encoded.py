"""Equivalence tests for the encoded-matrix execution core.

The vectorized batch paths (``_predict_batch`` / ``_predict_proba_batch``)
must be drop-in replacements for the historical row-at-a-time loops: same
labels, same probabilities, bit for bit, for every classifier in the registry,
including datasets with missing values and mixed column types.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.injection import MissingValuesInjector
from repro.datasets import make_classification_dataset
from repro.exceptions import MiningError
from repro.mining import CLASSIFIER_REGISTRY, KNNClassifier, NaiveBayesClassifier
from repro.tabular.dataset import Column, ColumnType, Dataset
from repro.tabular.encoded import EncodedDataset, encode_dataset

ALL_CLASSIFIERS = sorted(CLASSIFIER_REGISTRY)


def _mixed_dataset(n_rows: int, missing: float, seed: int) -> Dataset:
    """A classification dataset with numeric, categorical, boolean and datetime
    feature columns plus injected missing values."""
    base = make_classification_dataset(n_rows=n_rows, n_numeric=2, n_categorical=2, seed=seed)
    rng = np.random.default_rng(seed + 1)
    flags = rng.choice([True, False], size=n_rows).tolist()
    days = [f"2024-01-{(i % 28) + 1:02d}" for i in range(n_rows)]
    base = base.add_column(Column("flag", flags, ctype=ColumnType.BOOLEAN))
    base = base.add_column(Column("day", days, ctype=ColumnType.DATETIME))
    if missing > 0:
        base = MissingValuesInjector().apply(base, missing, seed=seed + 2)
    return base


def _force_row_path(model):
    """Disable the batch hooks on one fitted instance (instance attrs shadow
    the class methods), so ``predict``/``predict_proba`` take the row loops."""
    model._predict_batch = lambda encoded: None
    model._predict_proba_batch = lambda encoded: None
    return model


def _row_loop_predictions(model, dataset):
    rows = []
    for row in dataset.iter_rows():
        features_only = {name: row.get(name) for name in model.feature_names_}
        rows.append(model._predict_row(features_only))
    return rows


@pytest.mark.parametrize("name", ALL_CLASSIFIERS)
@pytest.mark.parametrize("missing", [0.0, 0.3])
def test_batch_predict_equals_row_path(name, missing):
    train = _mixed_dataset(80, missing, seed=31)
    test = _mixed_dataset(40, missing, seed=77)
    model = CLASSIFIER_REGISTRY[name]().fit(train)
    batch = model.predict(test)
    try:
        row = _row_loop_predictions(model, test)
    except MiningError:
        # Dataset-wise classifiers (logistic regression, bagging) have no row
        # path; their predict() is a single unchanged implementation.
        return
    assert [str(p) for p in batch] == [str(p) for p in row]


@pytest.mark.parametrize("name", ALL_CLASSIFIERS)
@pytest.mark.parametrize("missing", [0.0, 0.3])
def test_batch_proba_equals_row_path(name, missing):
    train = _mixed_dataset(80, missing, seed=13)
    test = _mixed_dataset(40, missing, seed=59)
    factory = CLASSIFIER_REGISTRY[name]
    batch_model = factory().fit(train)
    row_model = _force_row_path(factory().fit(train))
    batch = batch_model.predict_proba(test)
    row = row_model.predict_proba(test)
    assert len(batch) == len(row) == test.n_rows
    for b, r in zip(batch, row):
        assert set(b) == set(r)
        for cls in b:
            assert b[cls] == r[cls], (cls, b[cls], r[cls])


@settings(max_examples=12, deadline=None)
@given(
    n_rows=st.integers(min_value=20, max_value=90),
    missing=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
    k=st.integers(min_value=1, max_value=9),
    weighted=st.booleans(),
)
def test_knn_batch_bit_identical_property(n_rows, missing, seed, k, weighted):
    """Whatever the dataset shape, missingness and k, the vectorized kNN path
    reproduces the row path bit for bit (including weighted tie handling)."""
    train = _mixed_dataset(n_rows, missing, seed=seed)
    test = _mixed_dataset(max(10, n_rows // 2), missing, seed=seed + 500)
    model = KNNClassifier(k=k, weighted=weighted).fit(train)
    assert model.predict(test) == _row_loop_predictions(model, test)


@settings(max_examples=12, deadline=None)
@given(
    n_rows=st.integers(min_value=20, max_value=90),
    missing=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_naive_bayes_batch_bit_identical_property(n_rows, missing, seed):
    train = _mixed_dataset(n_rows, missing, seed=seed)
    test = _mixed_dataset(max(10, n_rows // 2), missing, seed=seed + 500)
    model = NaiveBayesClassifier().fit(train)
    assert model.predict(test) == _row_loop_predictions(model, test)


def test_batch_handles_dropped_feature_columns():
    """A test set missing a trained feature behaves like an all-missing column,
    exactly as row.get(name) -> None does in the row path."""
    train = _mixed_dataset(60, 0.0, seed=5)
    test = _mixed_dataset(30, 0.0, seed=6).drop_columns(["num_0", "cat_0"])
    for name in ("knn", "naive_bayes"):
        model = CLASSIFIER_REGISTRY[name]().fit(train)
        assert model.predict(test) == _row_loop_predictions(model, test)


def test_batch_handles_unseen_categories():
    train = _mixed_dataset(60, 0.1, seed=8)
    test = _mixed_dataset(30, 0.1, seed=9).replace_column(
        Column("cat_0", ["brand_new_level"] * 30, ctype=ColumnType.CATEGORICAL)
    )
    for name in ("knn", "naive_bayes"):
        model = CLASSIFIER_REGISTRY[name]().fit(train)
        assert model.predict(test) == _row_loop_predictions(model, test)


class TestEncodedDataset:
    def test_encoding_is_cached_on_the_dataset(self):
        dataset = _mixed_dataset(25, 0.2, seed=3)
        assert encode_dataset(dataset) is encode_dataset(dataset)

    def test_numeric_view_marks_missing_and_unparseable(self):
        dataset = Dataset.from_dict(
            {"x": [1.5, None, 2.5], "s": ["3", "oops", None]},
            ctypes={"s": ColumnType.CATEGORICAL},
        )
        encoded = encode_dataset(dataset)
        values, missing = encoded.numeric_view("x")
        assert missing.tolist() == [False, True, False]
        values, missing = encoded.numeric_view("s")
        assert values[0] == 3.0
        assert missing.tolist() == [False, True, True]

    def test_codes_view_vocabulary_first_seen_order(self):
        dataset = Dataset.from_dict({"c": ["b", "a", None, "b", "c"]})
        codes, vocabulary, index = encode_dataset(dataset).codes_view("c")
        assert vocabulary == ["b", "a", "c"]
        assert codes.tolist() == [0, 1, -1, 0, 2]
        assert index == {"b": 0, "a": 1, "c": 2}

    def test_absent_column_is_all_missing(self):
        dataset = Dataset.from_dict({"c": ["x", "y"]})
        encoded = encode_dataset(dataset)
        values, missing = encoded.numeric_view("ghost")
        assert missing.all() and np.isnan(values).all()
        codes, vocabulary, _ = encoded.codes_view("ghost")
        assert vocabulary == [] and (codes == -1).all()

    def test_take_slices_without_reencoding_and_restricts_vocab(self):
        dataset = Dataset.from_dict({"c": ["a", "b", "c", "b", "a"], "x": [1.0, 2.0, 3.0, 4.0, 5.0]})
        encoded = encode_dataset(dataset)
        encoded.codes_view("c")
        encoded.numeric_view("x")
        subset = encoded.take([4, 1, 3])
        sub_encoded = encode_dataset(subset)
        assert isinstance(sub_encoded, EncodedDataset)
        codes, vocabulary, _ = sub_encoded.codes_view("c")
        # Levels restricted to the slice, first-seen order within the slice.
        assert vocabulary == ["a", "b"]
        assert codes.tolist() == [0, 1, 1]
        values, missing = sub_encoded.numeric_view("x")
        assert values.tolist() == [5.0, 2.0, 4.0]
        # The slice matches a from-scratch encoding of the same subset rows.
        fresh = EncodedDataset(dataset.take([4, 1, 3]))
        fresh_codes, fresh_vocab, _ = fresh.codes_view("c")
        assert fresh_vocab == vocabulary and fresh_codes.tolist() == codes.tolist()


class TestTabularSatellites:
    def test_concat_same_types_avoids_coercion_and_matches_semantics(self):
        a = Dataset.from_dict({"x": [1.0, None], "c": ["p", None]})
        b = Dataset.from_dict({"x": [3.0], "c": ["q"]}, ctypes={"c": a["c"].ctype})
        merged = a.concat(b)
        assert merged.n_rows == 3
        assert merged["x"].ctype == a["x"].ctype
        assert merged["c"].tolist() == ["p", None, "q"]
        assert np.isnan(merged["x"].values[1])

    def test_concat_mixed_types_still_coerces(self):
        a = Dataset.from_dict({"x": [1.0, 2.0]})
        b = Dataset.from_dict({"x": ["3", "4"]}, ctypes={"x": ColumnType.CATEGORICAL})
        merged = a.concat(b)
        assert merged["x"].ctype == ColumnType.NUMERIC
        assert merged["x"].tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_missing_mask_cached_and_consistent(self):
        column = Column("c", ["a", None, "b", None])
        first = column.missing_mask()
        assert first.tolist() == [False, True, False, True]
        assert column.missing_mask() is first  # cached object reused
        taken = column.take([1, 2])
        assert taken.missing_mask().tolist() == [True, False]
        assert column.copy().missing_mask().tolist() == first.tolist()

    def test_value_counts_counter(self):
        column = Column("c", ["a", "b", "a", None, "a"])
        counts = column.value_counts()
        assert counts == {"a": 3, "b": 1}
        assert isinstance(counts, dict)

    def test_numeric_summary_quartiles(self):
        from repro.tabular.stats import numeric_summary

        column = Column("x", [float(v) for v in range(1, 101)])
        summary = numeric_summary(column)
        assert summary["q1"] == pytest.approx(np.percentile(np.arange(1.0, 101.0), 25))
        assert summary["median"] == pytest.approx(50.5)
        assert summary["q3"] == pytest.approx(np.percentile(np.arange(1.0, 101.0), 75))
