"""Equivalence tests for the encoded-matrix execution core.

The vectorized batch paths (``_predict_batch`` / ``_predict_proba_batch``)
must be drop-in replacements for the historical row-at-a-time loops: same
labels, same probabilities, bit for bit, for every classifier in the registry,
including datasets with missing values and mixed column types.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.injection import MissingValuesInjector
from repro.datasets import make_classification_dataset
from repro.exceptions import MiningError
from repro.mining import (
    CLASSIFIER_REGISTRY,
    BaggingClassifier,
    DecisionTreeClassifier,
    KNNClassifier,
    NaiveBayesClassifier,
    OneRClassifier,
    PrismClassifier,
    RandomSubspaceForest,
    cross_validate,
)
from repro.tabular.dataset import Column, ColumnType, Dataset
from repro.tabular.encoded import EncodedDataset, encode_dataset, merge_missing_level

ALL_CLASSIFIERS = sorted(CLASSIFIER_REGISTRY)
#: Classifiers with both an encoded fit and a retained row-at-a-time fit.
DUAL_FIT_CLASSIFIERS = ("decision_tree", "one_r", "prism")


def _mixed_dataset(n_rows: int, missing: float, seed: int) -> Dataset:
    """A classification dataset with numeric, categorical, boolean and datetime
    feature columns plus injected missing values."""
    base = make_classification_dataset(n_rows=n_rows, n_numeric=2, n_categorical=2, seed=seed)
    rng = np.random.default_rng(seed + 1)
    flags = rng.choice([True, False], size=n_rows).tolist()
    days = [f"2024-01-{(i % 28) + 1:02d}" for i in range(n_rows)]
    base = base.add_column(Column("flag", flags, ctype=ColumnType.BOOLEAN))
    base = base.add_column(Column("day", days, ctype=ColumnType.DATETIME))
    if missing > 0:
        base = MissingValuesInjector().apply(base, missing, seed=seed + 2)
    return base


def _force_row_path(model):
    """Disable the batch hooks on one fitted instance (instance attrs shadow
    the class methods), so ``predict``/``predict_proba`` take the row loops."""
    model._predict_batch = lambda encoded: None
    model._predict_proba_batch = lambda encoded: None
    return model


def _force_row_fit(model):
    """Pin one unfitted instance to its row-at-a-time reference fit."""
    model._force_row_fit = True
    return model


def _full_row_factory(name):
    """A factory whose instances take the row path end to end (fit + predict),
    including ensemble members."""

    def factory():
        model = _force_row_path(_force_row_fit(CLASSIFIER_REGISTRY[name]()))
        base_factory = getattr(model, "base_factory", None)
        if base_factory is not None:
            model.base_factory = lambda: _force_row_path(_force_row_fit(base_factory()))
        return model

    return factory


def _row_loop_predictions(model, dataset):
    rows = []
    for row in dataset.iter_rows():
        features_only = {name: row.get(name) for name in model.feature_names_}
        rows.append(model._predict_row(features_only))
    return rows


@pytest.mark.parametrize("name", ALL_CLASSIFIERS)
@pytest.mark.parametrize("missing", [0.0, 0.3])
def test_batch_predict_equals_row_path(name, missing):
    train = _mixed_dataset(80, missing, seed=31)
    test = _mixed_dataset(40, missing, seed=77)
    model = CLASSIFIER_REGISTRY[name]().fit(train)
    batch = model.predict(test)
    try:
        row = _row_loop_predictions(model, test)
    except MiningError:
        # Dataset-wise classifiers (logistic regression, bagging) have no row
        # path; their predict() is a single unchanged implementation.
        return
    assert [str(p) for p in batch] == [str(p) for p in row]


@pytest.mark.parametrize("name", ALL_CLASSIFIERS)
@pytest.mark.parametrize("missing", [0.0, 0.3])
def test_batch_proba_equals_row_path(name, missing):
    train = _mixed_dataset(80, missing, seed=13)
    test = _mixed_dataset(40, missing, seed=59)
    factory = CLASSIFIER_REGISTRY[name]
    batch_model = factory().fit(train)
    row_model = _force_row_path(factory().fit(train))
    batch = batch_model.predict_proba(test)
    row = row_model.predict_proba(test)
    assert len(batch) == len(row) == test.n_rows
    for b, r in zip(batch, row):
        assert set(b) == set(r)
        for cls in b:
            assert b[cls] == r[cls], (cls, b[cls], r[cls])


@settings(max_examples=12, deadline=None)
@given(
    n_rows=st.integers(min_value=20, max_value=90),
    missing=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
    k=st.integers(min_value=1, max_value=9),
    weighted=st.booleans(),
)
def test_knn_batch_bit_identical_property(n_rows, missing, seed, k, weighted):
    """Whatever the dataset shape, missingness and k, the vectorized kNN path
    reproduces the row path bit for bit (including weighted tie handling)."""
    train = _mixed_dataset(n_rows, missing, seed=seed)
    test = _mixed_dataset(max(10, n_rows // 2), missing, seed=seed + 500)
    model = KNNClassifier(k=k, weighted=weighted).fit(train)
    assert model.predict(test) == _row_loop_predictions(model, test)


@settings(max_examples=12, deadline=None)
@given(
    n_rows=st.integers(min_value=20, max_value=90),
    missing=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_naive_bayes_batch_bit_identical_property(n_rows, missing, seed):
    train = _mixed_dataset(n_rows, missing, seed=seed)
    test = _mixed_dataset(max(10, n_rows // 2), missing, seed=seed + 500)
    model = NaiveBayesClassifier().fit(train)
    assert model.predict(test) == _row_loop_predictions(model, test)


def test_batch_handles_dropped_feature_columns():
    """A test set missing a trained feature behaves like an all-missing column,
    exactly as row.get(name) -> None does in the row path."""
    train = _mixed_dataset(60, 0.0, seed=5)
    test = _mixed_dataset(30, 0.0, seed=6).drop_columns(["num_0", "cat_0"])
    for name in ("knn", "naive_bayes"):
        model = CLASSIFIER_REGISTRY[name]().fit(train)
        assert model.predict(test) == _row_loop_predictions(model, test)


def test_batch_handles_unseen_categories():
    train = _mixed_dataset(60, 0.1, seed=8)
    test = _mixed_dataset(30, 0.1, seed=9).replace_column(
        Column("cat_0", ["brand_new_level"] * 30, ctype=ColumnType.CATEGORICAL)
    )
    for name in ("knn", "naive_bayes"):
        model = CLASSIFIER_REGISTRY[name]().fit(train)
        assert model.predict(test) == _row_loop_predictions(model, test)


class TestEncodedDataset:
    def test_encoding_is_cached_on_the_dataset(self):
        dataset = _mixed_dataset(25, 0.2, seed=3)
        assert encode_dataset(dataset) is encode_dataset(dataset)

    def test_numeric_view_marks_missing_and_unparseable(self):
        dataset = Dataset.from_dict(
            {"x": [1.5, None, 2.5], "s": ["3", "oops", None]},
            ctypes={"s": ColumnType.CATEGORICAL},
        )
        encoded = encode_dataset(dataset)
        values, missing = encoded.numeric_view("x")
        assert missing.tolist() == [False, True, False]
        values, missing = encoded.numeric_view("s")
        assert values[0] == 3.0
        assert missing.tolist() == [False, True, True]

    def test_codes_view_vocabulary_first_seen_order(self):
        dataset = Dataset.from_dict({"c": ["b", "a", None, "b", "c"]})
        codes, vocabulary, index = encode_dataset(dataset).codes_view("c")
        assert vocabulary == ["b", "a", "c"]
        assert codes.tolist() == [0, 1, -1, 0, 2]
        assert index == {"b": 0, "a": 1, "c": 2}

    def test_absent_column_is_all_missing(self):
        dataset = Dataset.from_dict({"c": ["x", "y"]})
        encoded = encode_dataset(dataset)
        values, missing = encoded.numeric_view("ghost")
        assert missing.all() and np.isnan(values).all()
        codes, vocabulary, _ = encoded.codes_view("ghost")
        assert vocabulary == [] and (codes == -1).all()

    def test_take_slices_without_reencoding_and_restricts_vocab(self):
        dataset = Dataset.from_dict({"c": ["a", "b", "c", "b", "a"], "x": [1.0, 2.0, 3.0, 4.0, 5.0]})
        encoded = encode_dataset(dataset)
        encoded.codes_view("c")
        encoded.numeric_view("x")
        subset = encoded.take([4, 1, 3])
        sub_encoded = encode_dataset(subset)
        assert isinstance(sub_encoded, EncodedDataset)
        codes, vocabulary, _ = sub_encoded.codes_view("c")
        # Levels restricted to the slice, first-seen order within the slice.
        assert vocabulary == ["a", "b"]
        assert codes.tolist() == [0, 1, 1]
        values, missing = sub_encoded.numeric_view("x")
        assert values.tolist() == [5.0, 2.0, 4.0]
        # The slice matches a from-scratch encoding of the same subset rows.
        fresh = EncodedDataset(dataset.take([4, 1, 3]))
        fresh_codes, fresh_vocab, _ = fresh.codes_view("c")
        assert fresh_vocab == vocabulary and fresh_codes.tolist() == codes.tolist()


class TestEncodedFitEquivalence:
    """The encoded (column-wise) fits must induce exactly the models the
    row-at-a-time reference fits would."""

    @pytest.mark.parametrize("missing", [0.0, 0.3, 0.5])
    @pytest.mark.parametrize("seed", [11, 47])
    def test_tree_encoded_fit_grows_identical_tree(self, missing, seed):
        train = _mixed_dataset(120, missing, seed=seed)
        encoded = DecisionTreeClassifier().fit(train)
        row = _force_row_fit(DecisionTreeClassifier()).fit(train)
        assert encoded.root_.rules() == row.root_.rules()
        assert encoded.depth() == row.depth()
        assert encoded.n_leaves() == row.n_leaves()

    @pytest.mark.parametrize("missing", [0.0, 0.4])
    def test_one_r_encoded_fit_matches_row_fit(self, missing):
        train = _mixed_dataset(110, missing, seed=23)
        encoded = OneRClassifier().fit(train)
        row = _force_row_fit(OneRClassifier()).fit(train)
        assert encoded.best_feature_ == row.best_feature_
        assert encoded.rules_ == row.rules_
        assert encoded.default_class_ == row.default_class_
        assert encoded._edges == row._edges

    @pytest.mark.parametrize("missing", [0.0, 0.4])
    def test_prism_encoded_fit_matches_row_fit(self, missing):
        train = _mixed_dataset(110, missing, seed=29)
        encoded = PrismClassifier().fit(train)
        row = _force_row_fit(PrismClassifier()).fit(train)
        assert encoded.rule_texts() == row.rule_texts()
        assert encoded.default_class_ == row.default_class_

    @pytest.mark.parametrize("name", DUAL_FIT_CLASSIFIERS + ("bagged_trees",))
    def test_cross_validation_metrics_identical_to_row_path(self, name):
        dataset = _mixed_dataset(90, 0.2, seed=41)
        fast = cross_validate(CLASSIFIER_REGISTRY[name], dataset, k=3, seed=0)
        slow = cross_validate(_full_row_factory(name), dataset, k=3, seed=0)
        assert fast.accuracy == slow.accuracy
        assert fast.macro_f1 == slow.macro_f1
        assert fast.kappa == slow.kappa
        assert fast.fold_accuracies == slow.fold_accuracies

    def test_subclass_overriding_row_machinery_keeps_row_fit(self):
        class CustomSplitTree(DecisionTreeClassifier):
            def _best_split(self, rows, labels):
                return None  # always a stump

        model = CustomSplitTree().fit(_mixed_dataset(60, 0.0, seed=7))
        assert model.root_.is_leaf


@settings(max_examples=12, deadline=None)
@given(
    n_rows=st.integers(min_value=25, max_value=90),
    missing=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_tree_batch_bit_identical_property(n_rows, missing, seed):
    """Whatever the dataset shape and missingness, the encoded tree fit and the
    masked batch prediction reproduce the row path bit for bit."""
    train = _mixed_dataset(n_rows, missing, seed=seed)
    test = _mixed_dataset(max(10, n_rows // 2), missing, seed=seed + 500)
    model = DecisionTreeClassifier().fit(train)
    row_model = _force_row_fit(DecisionTreeClassifier()).fit(train)
    assert model.root_.rules() == row_model.root_.rules()
    assert model.predict(test) == _row_loop_predictions(model, test)


class TestEnsembleBatchVotes:
    """Batch vote tallies must replicate the per-row Counter loop exactly."""

    @pytest.mark.parametrize("missing", [0.0, 0.3])
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: BaggingClassifier(n_estimators=7, seed=3),
            lambda: RandomSubspaceForest(n_estimators=9, feature_fraction=0.5, seed=5),
            lambda: BaggingClassifier(base_factory=NaiveBayesClassifier, n_estimators=5, seed=1),
        ],
    )
    def test_batch_votes_equal_counter_loop(self, missing, factory):
        train = _mixed_dataset(90, missing, seed=17)
        test = _mixed_dataset(45, missing, seed=71)
        model = factory().fit(train)
        row_model = _force_row_path(factory().fit(train))
        assert model.predict(test) == row_model.predict(test)
        batch_proba = model.predict_proba(test)
        row_proba = row_model.predict_proba(test)
        assert batch_proba == row_proba

    def test_members_without_batch_path_fall_back_per_member(self):
        train = _mixed_dataset(70, 0.1, seed=9)
        test = _mixed_dataset(30, 0.1, seed=19)

        def row_only_tree():
            return _force_row_path(DecisionTreeClassifier(max_depth=4))

        model = BaggingClassifier(base_factory=row_only_tree, n_estimators=5, seed=2).fit(train)
        reference = _force_row_path(
            BaggingClassifier(base_factory=row_only_tree, n_estimators=5, seed=2).fit(train)
        )
        assert model.predict(test) == reference.predict(test)


class TestVectorizedEdgeCases:
    def test_single_class_fold(self):
        """A constant target must give a single-leaf tree / default-only rules,
        with batch and row paths in agreement."""
        base = _mixed_dataset(40, 0.2, seed=13)
        target_name = base.target_column().name
        train = base.replace_column(
            Column(
                target_name,
                ["only"] * 40,
                ctype=ColumnType.CATEGORICAL,
                role=base[target_name].role,
            )
        )
        test = _mixed_dataset(20, 0.2, seed=99)
        for name in DUAL_FIT_CLASSIFIERS:
            model = CLASSIFIER_REGISTRY[name]().fit(train)
            assert model.predict(test) == ["only"] * test.n_rows
            assert model.predict(test) == _row_loop_predictions(model, test)
        tree = DecisionTreeClassifier().fit(train)
        assert tree.root_.is_leaf

    def test_all_missing_feature_column(self):
        train = _mixed_dataset(60, 0.0, seed=3).replace_column(
            Column("num_0", [None] * 60, ctype=ColumnType.NUMERIC)
        )
        test = _mixed_dataset(30, 0.0, seed=4).replace_column(
            Column("num_0", [None] * 30, ctype=ColumnType.NUMERIC)
        )
        for name in DUAL_FIT_CLASSIFIERS:
            encoded_model = CLASSIFIER_REGISTRY[name]().fit(train)
            row_model = _force_row_fit(CLASSIFIER_REGISTRY[name]()).fit(train)
            assert encoded_model.predict(test) == _row_loop_predictions(encoded_model, test)
            assert encoded_model.predict(test) == _row_loop_predictions(row_model, test)

    def test_prism_empty_rule_coverage_falls_back_to_default(self):
        """Test rows no induced rule covers must take the default class on both
        paths (including levels never seen at fit time)."""
        train = Dataset.from_dict(
            {
                "colour": ["red", "red", "blue", "blue", "green", "green"],
                "label": ["a", "a", "b", "b", "a", "b"],
            },
            ctypes={"colour": ColumnType.CATEGORICAL, "label": ColumnType.CATEGORICAL},
        ).set_target("label")
        model = PrismClassifier(bins=2).fit(train)
        test = Dataset.from_dict(
            {"colour": ["violet", "amber", None]},
            ctypes={"colour": ColumnType.CATEGORICAL},
        )
        batch = model.predict(test)
        row = _row_loop_predictions(model, test)
        assert batch == row
        assert batch[:2] == [model.default_class_] * 2

    def test_merge_missing_level_reuses_literal_level(self):
        codes = np.asarray([0, -1, 1, -1], dtype=np.int64)
        merged, levels = merge_missing_level(codes, ["<missing>", "x"])
        assert levels == ["<missing>", "x"]
        assert merged.tolist() == [0, 0, 1, 0]
        merged, levels = merge_missing_level(codes, ["a", "b"])
        assert levels == ["a", "b", "<missing>"]
        assert merged.tolist() == [0, 2, 1, 2]


class TestTabularSatellites:
    def test_concat_same_types_avoids_coercion_and_matches_semantics(self):
        a = Dataset.from_dict({"x": [1.0, None], "c": ["p", None]})
        b = Dataset.from_dict({"x": [3.0], "c": ["q"]}, ctypes={"c": a["c"].ctype})
        merged = a.concat(b)
        assert merged.n_rows == 3
        assert merged["x"].ctype == a["x"].ctype
        assert merged["c"].tolist() == ["p", None, "q"]
        assert np.isnan(merged["x"].values[1])

    def test_concat_mixed_types_still_coerces(self):
        a = Dataset.from_dict({"x": [1.0, 2.0]})
        b = Dataset.from_dict({"x": ["3", "4"]}, ctypes={"x": ColumnType.CATEGORICAL})
        merged = a.concat(b)
        assert merged["x"].ctype == ColumnType.NUMERIC
        assert merged["x"].tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_missing_mask_cached_and_consistent(self):
        column = Column("c", ["a", None, "b", None])
        first = column.missing_mask()
        assert first.tolist() == [False, True, False, True]
        assert column.missing_mask() is first  # cached object reused
        taken = column.take([1, 2])
        assert taken.missing_mask().tolist() == [True, False]
        assert column.copy().missing_mask().tolist() == first.tolist()

    def test_value_counts_counter(self):
        column = Column("c", ["a", "b", "a", None, "a"])
        counts = column.value_counts()
        assert counts == {"a": 3, "b": 1}
        assert isinstance(counts, dict)

    def test_numeric_summary_quartiles(self):
        from repro.tabular.stats import numeric_summary

        column = Column("x", [float(v) for v in range(1, 101)])
        summary = numeric_summary(column)
        assert summary["q1"] == pytest.approx(np.percentile(np.arange(1.0, 101.0), 25))
        assert summary["median"] == pytest.approx(50.5)
        assert summary["q3"] == pytest.approx(np.percentile(np.arange(1.0, 101.0), 75))
