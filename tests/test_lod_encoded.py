"""Equivalence tests for the LOD columnar tier.

Every LOD hot path has two implementations — the dict-index / pairwise
reference tier and the vectorized columnar tier — that must be bit-identical:
``select``/``ask``/``count`` bindings (values, row order, binding-dict key
order), linker link sets and scores (float bits), and tabulated datasets
(cells, column order, ctypes, roles).  These tests pin that contract, the
force-hatch routing, cache invalidation on mutation, the no-mutation
guarantee of the shared columnar snapshot, and the encode-exactly-once
behaviour of the tabulate → profile → cube pipeline.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import air_quality
from repro.datasets.civic import CIVIC, civic_lod_graph
from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.linker import EntityLinker, LinkRule
from repro.lod import query as query_module
from repro.lod import tabulate as tabulate_module
from repro.lod.query import TriplePattern, Variable, ask, count, select
from repro.lod.serialization import parse_ntriples, to_ntriples, to_turtle
from repro.lod.tabulate import tabulate_entities
from repro.lod.terms import BNode, Literal, Triple
from repro.lod.vocabulary import Namespace, OWL, RDF
from repro.quality import measure_quality
from repro.tabular import encoded as encoded_module
from repro.tabular.encoded import EncodedDataset, encode_dataset

EX = Namespace("http://example.org/")


def _bits(value):
    """Bit-exact comparison key (floats compared by their IEEE-754 bytes)."""
    if isinstance(value, float):
        return ("float", struct.pack("<d", value))
    return (type(value).__name__, value)


def assert_identical_bindings(fast, slow):
    """Same bindings, same row order, same dict key order, same term objects."""
    assert len(fast) == len(slow)
    for a, b in zip(fast, slow):
        assert list(a) == list(b)  # key insertion order
        assert a == b


def assert_identical_datasets(a, b):
    """Bit-exact dataset equality: columns, ctypes, roles, cells and types."""
    assert a.name == b.name
    assert a.column_names == b.column_names
    for name in a.column_names:
        left, right = a[name], b[name]
        assert left.ctype == right.ctype
        assert left.role == right.role
        for x, y in zip(left.tolist(), right.tolist()):
            if isinstance(x, float) and isinstance(y, float) and np.isnan(x) and np.isnan(y):
                continue
            assert _bits(x) == _bits(y)


@pytest.fixture
def city_graph():
    graph = Graph("http://example.org/graph/cities")
    provinces = ["Alicante", "Murcia", "Valencia"]
    for i in range(40):
        subject = EX[f"city{i}"]
        graph.add_resource(
            subject,
            rdf_type=EX.City if i % 4 else EX.Town,
            label=f"City {i}",
            properties={
                EX.population: Literal(1000 * (i % 7)),
                EX.province: Literal(provinces[i % 3]),
            },
        )
        if i % 5 == 0:
            graph.add(subject, EX.twin, EX[f"city{(i * 3) % 40}"])
    return graph


QUERIES = [
    [TriplePattern(Variable("s"), RDF.type, EX.City)],
    [
        TriplePattern(Variable("s"), RDF.type, EX.City),
        TriplePattern(Variable("s"), EX.population, Variable("pop")),
    ],
    [
        TriplePattern(Variable("s"), EX.twin, Variable("t")),
        TriplePattern(Variable("t"), EX.province, Variable("prov")),
        TriplePattern(Variable("s"), EX.province, Variable("prov")),
    ],
    [TriplePattern(Variable("s"), Variable("p"), Variable("o"))],
    [TriplePattern(Variable("x"), EX.twin, Variable("x"))],
    [TriplePattern(EX["city1"], Variable("p"), Variable("o"))],
    [TriplePattern(Variable("s"), Variable("p"), Literal("Murcia"))],
    [TriplePattern(Variable("s"), EX.population, Literal(424242))],
    [TriplePattern(EX["city1"], RDF.type, EX.City)],
    [TriplePattern(EX["ghost"], Variable("p"), Variable("o"))],
]


class TestSelectEquivalence:
    @pytest.mark.parametrize("patterns", QUERIES, ids=range(len(QUERIES)))
    def test_select_bit_identical(self, city_graph, patterns):
        fast = select(city_graph, patterns)
        slow = select(city_graph, patterns, force_row=True)
        assert_identical_bindings(fast, slow)

    @pytest.mark.parametrize("patterns", QUERIES, ids=range(len(QUERIES)))
    def test_ask_and_count_identical(self, city_graph, patterns):
        assert ask(city_graph, patterns) == ask(city_graph, patterns, force_row=True)
        assert count(city_graph, patterns) == count(city_graph, patterns, force_row=True)
        variables = sorted({v for pattern in patterns for v in pattern.variables()})
        if variables:
            assert count(city_graph, patterns, distinct_variable=variables[0]) == count(
                city_graph, patterns, distinct_variable=variables[0], force_row=True
            )

    def test_modifiers_identical(self, city_graph):
        patterns = [TriplePattern(Variable("s"), EX.population, Variable("pop"))]
        kwargs = dict(
            variables=["pop"],
            distinct=True,
            order_by="pop",
            descending=True,
            limit=5,
            where=lambda binding: binding["pop"].python_value() >= 2000,
        )
        assert_identical_bindings(
            select(city_graph, patterns, **kwargs),
            select(city_graph, patterns, force_row=True, **kwargs),
        )

    def test_unbound_projection_raises_on_both_tiers(self, city_graph):
        patterns = [TriplePattern(Variable("s"), RDF.type, EX.City)]
        with pytest.raises(LODError):
            select(city_graph, patterns, variables=["ghost"])
        with pytest.raises(LODError):
            select(city_graph, patterns, variables=["ghost"], force_row=True)

    def test_empty_graph(self):
        graph = Graph()
        patterns = [TriplePattern(Variable("s"), RDF.type, EX.City)]
        assert select(graph, patterns) == select(graph, patterns, force_row=True) == []
        assert not ask(graph, patterns)
        assert count(graph, patterns) == 0

    def test_mutation_invalidates_the_columnar_cache(self, city_graph):
        patterns = [TriplePattern(Variable("s"), RDF.type, EX.City)]
        before = len(select(city_graph, patterns))
        assert city_graph.store._columnar is not None
        city_graph.add(EX["fresh"], RDF.type, EX.City)
        assert city_graph.store._columnar is None
        assert len(select(city_graph, patterns)) == before + 1
        triple = Triple(EX["fresh"], RDF.type, EX.City)
        city_graph.remove(triple)
        assert len(select(city_graph, patterns)) == before
        assert_identical_bindings(
            select(city_graph, patterns), select(city_graph, patterns, force_row=True)
        )

    def test_routing_spies(self, city_graph, monkeypatch):
        calls = []
        original_encoded = query_module._join_encoded
        original_reference = query_module._join_reference
        monkeypatch.setattr(
            query_module, "_join_encoded", lambda *a: calls.append("encoded") or original_encoded(*a)
        )
        monkeypatch.setattr(
            query_module,
            "_join_reference",
            lambda *a: calls.append("reference") or original_reference(*a),
        )
        patterns = [TriplePattern(Variable("s"), RDF.type, EX.City)]
        select(city_graph, patterns)
        assert calls == ["encoded"]
        select(city_graph, patterns, force_row=True)
        assert calls == ["encoded", "reference"]
        city_graph._force_row_select = True
        select(city_graph, patterns)
        assert calls == ["encoded", "reference", "reference"]

    def test_select_does_not_mutate_the_graph_or_the_snapshot(self, city_graph):
        triples_before = set(city_graph)
        columnar = city_graph.store.columnar()
        snapshots = {name: tuple(col.copy() for col in columnar.order(name)) for name in ("spo", "pos", "osp")}
        for patterns in QUERIES:
            select(city_graph, patterns)
            select(city_graph, patterns, force_row=True)
        assert set(city_graph) == triples_before
        assert city_graph.store.columnar() is columnar
        for name, arrays in snapshots.items():
            for before, after in zip(arrays, columnar.order(name)):
                assert np.array_equal(before, after)


_texts = st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20)
_subjects = st.one_of(
    st.sampled_from([EX[f"s{i}"] for i in range(6)]),
    st.integers(min_value=1, max_value=4).map(lambda i: BNode(f"b{i}")),
)
_objects = st.one_of(_subjects, _texts.map(Literal))
_triples = st.builds(Triple, _subjects, st.sampled_from([EX[f"p{i}"] for i in range(4)]), _objects)


class TestSerializationRoundTrip:
    @given(st.lists(_triples, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_ntriples_roundtrip_reproduces_the_interned_store(self, triples):
        graph = Graph()
        for triple in triples:
            graph.add_triple(triple)
        parsed = parse_ntriples(to_ntriples(graph))
        assert set(parsed) == set(graph)
        assert len(parsed) == len(graph)
        # The canonical (sorted) serialisation makes the round trip a fixpoint:
        # parsing it again yields an interned columnar store with identical
        # id arrays, term table and blocks.
        again = parse_ntriples(to_ntriples(parsed))
        first, second = parsed.store.columnar(), again.store.columnar()
        assert first.terms == second.terms
        assert first.n_triples == second.n_triples == len(graph)
        for name in ("spo", "pos", "osp"):
            for a, b in zip(first.order(name), second.order(name)):
                assert np.array_equal(a, b)
        # Turtle serialisation of the same graph stays deterministic.
        assert to_turtle(parsed) == to_turtle(again)

    def test_unicode_and_backslash_escapes_decode_correctly(self):
        graph = parse_ntriples(
            '<http://e.org/s> <http://e.org/p> "caf\\u00E9 \\U0001F600 a\\\\nb\\tc" .'
        )
        literal = next(iter(graph)).object
        assert literal.value == "café \U0001F600 a\\nb\tc"
        # and the decoded form survives a round trip
        again = next(iter(parse_ntriples(to_ntriples(graph)))).object
        assert again.value == literal.value

    def test_out_of_range_unicode_escape_is_a_parse_error_with_line_context(self):
        with pytest.raises(LODError, match="line 1"):
            parse_ntriples('<http://e.org/s> <http://e.org/p> "x\\UFFFFFFFFy" .')

    def test_stale_snapshot_raises_instead_of_mixing_states(self):
        graph = Graph()
        graph.add(EX["s"], EX["p"], Literal("x"))
        snapshot = graph.store.columnar()
        assert snapshot.order("spo")[0].size == 1
        graph.add(EX["s2"], EX["p2"], Literal("y"))
        with pytest.raises(LODError, match="stale"):
            snapshot.order("pos")
        fresh = graph.store.columnar()
        assert fresh.order("pos")[0].size == 2

    @given(st.lists(_triples, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_roundtripped_graph_answers_queries_identically(self, triples):
        graph = Graph()
        for triple in triples:
            graph.add_triple(triple)
        parsed = parse_ntriples(to_ntriples(graph))
        patterns = [TriplePattern(Variable("s"), EX["p0"], Variable("o"))]
        fast = select(parsed, patterns, distinct=True, order_by="o")
        slow = select(parsed, patterns, distinct=True, order_by="o", force_row=True)
        assert_identical_bindings(fast, slow)
        assert count(parsed, patterns) == count(graph, patterns, force_row=True)


def _city_graph(suffix: str, names: list[str | None], extras: dict[int, list[str]] | None = None) -> Graph:
    graph = Graph(f"http://example.org/graph/{suffix}")
    for i, name in enumerate(names):
        properties: dict = {EX.rank: Literal(i)}
        if name is not None:
            properties[EX.cityName] = Literal(name)
        for extra in (extras or {}).get(i, []):
            properties.setdefault(EX.alias, []).append(Literal(extra))
        graph.add_resource(EX[f"{suffix}/city{i}"], rdf_type=EX.City, properties=properties)
    return graph


LINKER_CASES = [
    (["Alicante", "Elche", "Torrevieja"], ["ALICANTE", "Elche ", "Orihuela"], 0.95),
    (["MÁLAGA", "santa pola"], ["malaga", "Santa-Pola"], 0.9),
    # no shared tokens, but an edit distance of 1 on 8 characters (0.875):
    (["abcdefgh"], ["abcdefgx"], 0.85),
    (["abcdefgh"], ["abcdefgx"], 0.9),
    (["city of elche", "elche"], ["elche city", "Elx"], 0.6),
    ([None, "Alicante"], ["Alicante", None], 0.85),
    (["one", "two"], ["three", "four"], 0.85),  # unlinkable
    ([""], ["", "x"], 0.85),  # empty normalised strings
    (["ab ab ab ab"], ["ab"], 0.85),  # repeated tokens vs singleton
]


class TestLinkerEquivalence:
    @pytest.mark.parametrize("left_names,right_names,threshold", LINKER_CASES)
    def test_link_sets_and_scores_identical(self, left_names, right_names, threshold):
        left = _city_graph("a", left_names)
        right = _city_graph("b", right_names)
        linker = EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=threshold)
        forced = EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=threshold)
        forced._force_pairwise_link = True
        fast = linker.link(left, EX.City, right, EX.City)
        slow = forced.link(left, EX.City, right, EX.City)
        assert [(l.left, l.right) for l in fast] == [(l.left, l.right) for l in slow]
        assert [_bits(l.score) for l in fast] == [_bits(l.score) for l in slow]

    def test_multi_rule_and_multi_value_identical(self):
        left = _city_graph("a", ["Alicante", "Elche", None], extras={0: ["Alacant"], 2: ["Elx"]})
        right = _city_graph("b", ["Alacant", "Elx"], extras={0: ["ALICANTE"]})
        rules = [
            LinkRule(EX.cityName, EX.cityName),
            LinkRule(EX.alias, EX.alias, weight=0.5),
            LinkRule(EX.cityName, EX.alias, weight=2.0),
        ]
        linker = EntityLinker(rules, threshold=0.5)
        forced = EntityLinker(rules, threshold=0.5)
        forced._force_pairwise_link = True
        fast = linker.link(left, EX.City, right, EX.City)
        slow = forced.link(left, EX.City, right, EX.City)
        assert [(l.left, l.right, _bits(l.score)) for l in fast] == [
            (l.left, l.right, _bits(l.score)) for l in slow
        ]

    def test_same_graph_skips_self_pairs_on_both_tiers(self):
        graph = _city_graph("s", ["Alicante", "ALICANTE", "Elche"])
        linker = EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=0.9)
        forced = EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=0.9)
        forced._force_pairwise_link = True
        fast = linker.link(graph, EX.City, graph, EX.City)
        slow = forced.link(graph, EX.City, graph, EX.City)
        assert [(l.left, l.right, _bits(l.score)) for l in fast] == [
            (l.left, l.right, _bits(l.score)) for l in slow
        ]
        assert all(link.left != link.right for link in fast)

    def test_missing_property_on_one_side(self):
        left = _city_graph("a", ["Alicante"])
        right = _city_graph("b", [None, None])
        linker = EntityLinker([LinkRule(EX.cityName, EX.cityName)])
        forced = EntityLinker([LinkRule(EX.cityName, EX.cityName)])
        forced._force_pairwise_link = True
        assert linker.link(left, EX.City, right, EX.City) == []
        assert forced.link(left, EX.City, right, EX.City) == []

    def test_routing_spies(self, monkeypatch):
        calls = []
        original_blocked = EntityLinker._link_blocked
        original_pairwise = EntityLinker._link_pairwise
        monkeypatch.setattr(
            EntityLinker,
            "_link_blocked",
            lambda self, *a: calls.append("blocked") or original_blocked(self, *a),
        )
        monkeypatch.setattr(
            EntityLinker,
            "_link_pairwise",
            lambda self, *a: calls.append("pairwise") or original_pairwise(self, *a),
        )
        left = _city_graph("a", ["Alicante"])
        right = _city_graph("b", ["Alicante"])
        linker = EntityLinker([LinkRule(EX.cityName, EX.cityName)])
        linker.link(left, EX.City, right, EX.City)
        assert calls == ["blocked"]
        linker._force_pairwise_link = True
        linker.link(left, EX.City, right, EX.City)
        assert calls == ["blocked", "pairwise"]
        custom = EntityLinker([LinkRule(EX.cityName, EX.cityName, comparator=lambda a, b: 1.0)])
        custom.link(left, EX.City, right, EX.City)
        assert calls == ["blocked", "pairwise", "pairwise"]

    def test_value_cache_is_scoped_to_the_run(self):
        left = _city_graph("a", ["Alicante"])
        right = _city_graph("b", ["Alicante"])
        linker = EntityLinker([LinkRule(EX.cityName, EX.cityName)])
        linker.link(left, EX.City, right, EX.City)
        assert linker._value_cache is None
        assert linker.score_pair(left, EX["a/city0"], right, EX["b/city0"]) == 1.0
        assert linker._value_cache is None

    def test_chunked_token_counting_matches_unchunked(self, monkeypatch):
        from repro.lod import linker as linker_module

        # Force many tiny chunks (token pass and char-bound pass alike) so
        # the cross-chunk merging paths are hit.
        monkeypatch.setattr(linker_module, "_TOKEN_PAIR_CHUNK", 4)
        monkeypatch.setattr(linker_module, "_CHUNK_CELL_BUDGET", 37)
        left = _city_graph("a", ["rio alto", "rio bajo", "villa rio", "monte alto"])
        right = _city_graph("b", ["RIO ALTO", "rio  bajo", "alto monte", "villa rio x"])
        linker = EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=0.6)
        forced = EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=0.6)
        forced._force_pairwise_link = True
        fast = linker.link(left, EX.City, right, EX.City)
        slow = forced.link(left, EX.City, right, EX.City)
        assert [(l.left, l.right, _bits(l.score)) for l in fast] == [
            (l.left, l.right, _bits(l.score)) for l in slow
        ]

    def test_degenerate_shared_token_falls_back_to_pairwise(self, monkeypatch):
        from repro.lod import linker as linker_module

        monkeypatch.setattr(linker_module, "_MAX_TOKEN_PAIR_EXPANSION", 10)
        # Every name shares the stop word "inc", blowing the expansion budget.
        left = _city_graph("a", [f"inc alpha{i}" for i in range(6)])
        right = _city_graph("b", [f"inc ALPHA{i}" for i in range(6)])
        calls = []
        original = EntityLinker._link_pairwise
        monkeypatch.setattr(
            EntityLinker,
            "_link_pairwise",
            lambda self, *a: calls.append("pairwise") or original(self, *a),
        )
        linker = EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=0.9)
        links = linker.link(left, EX.City, right, EX.City)
        assert calls == ["pairwise"]
        assert len(links) == 6

    def test_link_does_not_mutate_the_graphs(self):
        left = _city_graph("a", ["Alicante", "Elche"])
        right = _city_graph("b", ["ALICANTE", "Elx"])
        before_left, before_right = set(left), set(right)
        EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=0.9).link(
            left, EX.City, right, EX.City
        )
        assert set(left) == before_left
        assert set(right) == before_right


@pytest.fixture
def lod_graph():
    return civic_lod_graph(air_quality(n_rows=80, seed=3, dirty=True), entity_class="AirQualityReading")


class TestTabulateEquivalence:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"multivalued": "count"},
            {"include_subject": False},
            {"min_property_coverage": 0.5},
            {"follow_same_as": False},
        ],
        ids=["default", "count", "no-subject", "coverage", "no-sameas"],
    )
    def test_tiers_bit_identical(self, lod_graph, kwargs):
        assert_identical_datasets(
            tabulate_entities(lod_graph, CIVIC.AirQualityReading, **kwargs),
            tabulate_entities(lod_graph, CIVIC.AirQualityReading, force_row=True, **kwargs),
        )

    def test_same_as_merging_and_late_label(self):
        graph = Graph()
        graph.add_resource(EX["e1"], rdf_type=EX.Entity, properties={EX.name: Literal("one"), EX.tag: ["a", "b"]})
        graph.add_resource(EX["e1b"], properties={EX.extra: Literal(9), EX.tag: ["a"]})
        graph.add(EX["e1"], OWL.sameAs, EX["e1b"])
        graph.add_resource(EX["e2"], rdf_type=EX.Entity, properties={EX.tag: "z"}, label="Second")
        for kwargs in ({}, {"multivalued": "count"}, {"follow_same_as": False}):
            assert_identical_datasets(
                tabulate_entities(graph, EX.Entity, **kwargs),
                tabulate_entities(graph, EX.Entity, force_row=True, **kwargs),
            )

    def test_all_missing_predicate_column(self):
        graph = Graph()
        graph.add_resource(EX["e1"], rdf_type=EX.Entity, properties={EX.name: Literal("one")})
        fast = tabulate_entities(graph, EX.Entity, properties=[EX.name, EX.ghost])
        slow = tabulate_entities(graph, EX.Entity, properties=[EX.name, EX.ghost], force_row=True)
        assert_identical_datasets(fast, slow)
        assert fast["ghost"].tolist() == [None]

    def test_empty_graph_raises_on_both_tiers(self):
        graph = Graph()
        with pytest.raises(LODError):
            tabulate_entities(graph, EX.Entity)
        with pytest.raises(LODError):
            tabulate_entities(graph, EX.Entity, force_row=True)

    def test_colliding_column_names_route_to_the_reference(self, monkeypatch):
        graph = Graph()
        # The property's rdfs:label is literally "subject", colliding with the
        # built-in identifier column; the columnar tier must step aside.
        graph.add_resource(EX.aboutProp, label="subject")
        graph.add_resource(EX["e1"], rdf_type=EX.Entity, properties={EX.aboutProp: Literal("x")})
        calls = []
        original = tabulate_module._tabulate_rows_reference
        monkeypatch.setattr(
            tabulate_module,
            "_tabulate_rows_reference",
            lambda *a: calls.append("reference") or original(*a),
        )
        tabulate_entities(graph, EX.Entity)
        assert calls == ["reference"]

    def test_routing_spies(self, lod_graph, monkeypatch):
        calls = []
        original_encoded = tabulate_module._tabulate_encoded
        original_reference = tabulate_module._tabulate_rows_reference
        monkeypatch.setattr(
            tabulate_module,
            "_tabulate_encoded",
            lambda *a: calls.append("encoded") or original_encoded(*a),
        )
        monkeypatch.setattr(
            tabulate_module,
            "_tabulate_rows_reference",
            lambda *a: calls.append("reference") or original_reference(*a),
        )
        tabulate_entities(lod_graph, CIVIC.AirQualityReading)
        assert calls == ["encoded"]
        tabulate_entities(lod_graph, CIVIC.AirQualityReading, force_row=True)
        assert calls == ["encoded", "reference"]

    def test_tabulate_does_not_mutate_the_graph(self, lod_graph):
        before = set(lod_graph)
        columnar = lod_graph.store.columnar()
        snapshot = tuple(col.copy() for col in columnar.order("spo"))
        tabulate_entities(lod_graph, CIVIC.AirQualityReading)
        tabulate_entities(lod_graph, CIVIC.AirQualityReading, force_row=True)
        assert set(lod_graph) == before
        assert lod_graph.store.columnar() is columnar
        for old, new in zip(snapshot, columnar.order("spo")):
            assert np.array_equal(old, new)


class TestEncodedSeeding:
    def test_seeded_views_match_a_cold_encode(self, lod_graph):
        dataset = tabulate_entities(lod_graph, CIVIC.AirQualityReading)
        assert hasattr(dataset, encoded_module._CACHE_ATTR)
        seeded = encode_dataset(dataset)
        cold = EncodedDataset(dataset)
        for name in dataset.column_names:
            if dataset[name].is_numeric():
                continue
            codes, vocabulary, index = seeded.codes_view(name)
            cold_codes, cold_vocabulary, cold_index = cold._encode_categorical(name)
            assert vocabulary == cold_vocabulary
            assert index == cold_index
            assert np.array_equal(codes, cold_codes)

    def test_pipeline_encodes_each_tabulated_dataset_exactly_once(self, lod_graph, monkeypatch):
        from repro.bi import Cube, Dimension, Measure

        root_encodes = []
        original = EncodedDataset.__init__

        def counting(self, dataset, _parent=None, _parent_indices=None):
            if _parent is None:
                root_encodes.append(dataset)
            original(self, dataset, _parent=_parent, _parent_indices=_parent_indices)

        monkeypatch.setattr(EncodedDataset, "__init__", counting)
        dataset = tabulate_entities(lod_graph, CIVIC.AirQualityReading)
        measure_quality(dataset)
        cube = Cube(
            dataset,
            dimensions=[Dimension("district", ("district",))],
            measures=[Measure("mean_no2", "no2", "mean")],
        )
        cube.rollup("district")
        assert root_encodes.count(dataset) == 1
