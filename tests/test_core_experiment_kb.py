"""Unit tests for user profiles, experiment plans/runner and the knowledge base."""

from __future__ import annotations

import json

import pytest

from repro.core import ExperimentPlan, ExperimentRecord, ExperimentRunner, KnowledgeBase, UserProfile
from repro.core.experiment import PHASE_CLEAN, PHASE_MIXED, PHASE_SIMPLE
from repro.datasets import make_classification_dataset
from repro.exceptions import ExperimentError, KnowledgeBaseError
from repro.quality import measure_quality


class TestUserProfile:
    def test_defaults(self):
        profile = UserProfile()
        assert profile.technique_family == "classification"
        assert "decision_tree" in profile.algorithms
        assert profile.cv_folds >= 2

    def test_family_specific_defaults(self):
        assert UserProfile(technique_family="association_rules").algorithms == ("apriori",)
        assert "kmeans" in UserProfile(technique_family="clustering").algorithms

    def test_validation(self):
        with pytest.raises(ExperimentError):
            UserProfile(technique_family="prophecy")
        with pytest.raises(ExperimentError):
            UserProfile(evaluation_metric="vibes")
        with pytest.raises(ExperimentError):
            UserProfile(cv_folds=1)

    def test_with_algorithms(self):
        restricted = UserProfile().with_algorithms(["knn"])
        assert restricted.algorithms == ("knn",)
        assert restricted.technique_family == "classification"

    def test_as_dict(self):
        payload = UserProfile(name="citizen").as_dict()
        assert payload["name"] == "citizen"
        assert isinstance(payload["algorithms"], list)


class TestExperimentPlan:
    def test_variant_enumeration(self):
        plan = ExperimentPlan(criteria=("completeness", "accuracy"), simple_severities=(0.0, 0.2, 0.4))
        simple = plan.simple_variants()
        assert len(simple) == 4  # two criteria x two non-zero severities
        assert all(len(v) == 1 for v in simple)
        mixed = plan.mixed_variants()
        assert len(mixed) == 1  # one unordered pair
        assert all(len(v) == 2 for v in mixed)
        assert plan.n_variants() == 1 + 4 + 1

    def test_explicit_mixed_combinations(self):
        plan = ExperimentPlan(
            criteria=("completeness",),
            mixed_combinations=({"completeness": 0.1, "accuracy": 0.3},),
        )
        assert plan.mixed_variants() == [{"completeness": 0.1, "accuracy": 0.3}]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentPlan(criteria=("nonsense",))
        with pytest.raises(ExperimentError):
            ExperimentPlan(simple_severities=(0.0, 2.0))


class TestExperimentRecord:
    def test_roundtrip(self):
        record = ExperimentRecord(
            dataset="d",
            algorithm="knn",
            phase=PHASE_SIMPLE,
            injections={"completeness": 0.2},
            quality_scores={"completeness": 0.8},
            metrics={"accuracy": 0.9},
            seed=4,
        )
        restored = ExperimentRecord.from_dict(json.loads(json.dumps(record.as_dict())))
        assert restored == record

    def test_profile_distance(self, clean_classification):
        profile = measure_quality(clean_classification, criteria=("completeness", "balance"))
        record = ExperimentRecord(
            dataset="d",
            algorithm="knn",
            phase=PHASE_SIMPLE,
            injections={},
            quality_scores={"completeness": 1.0, "balance": profile.score("balance")},
            metrics={"accuracy": 0.9},
        )
        assert record.profile_distance(profile) == pytest.approx(0.0, abs=1e-9)
        far_record = ExperimentRecord(
            dataset="d", algorithm="knn", phase=PHASE_SIMPLE, injections={},
            quality_scores={"completeness": 0.0, "balance": 0.0}, metrics={"accuracy": 0.5},
        )
        assert far_record.profile_distance(profile) > 1.0

    def test_profile_distance_requires_shared_criteria(self, clean_classification):
        profile = measure_quality(clean_classification, criteria=("completeness",))
        record = ExperimentRecord(
            dataset="d", algorithm="knn", phase=PHASE_SIMPLE, injections={},
            quality_scores={"balance": 1.0}, metrics={"accuracy": 0.5},
        )
        with pytest.raises(ExperimentError):
            record.profile_distance(profile)


class TestExperimentRunner:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentRunner(UserProfile(algorithms=("quantum_forest",)))

    def test_run_variant_produces_one_record_per_algorithm(self, clean_classification):
        runner = ExperimentRunner(UserProfile(algorithms=("decision_tree", "naive_bayes"), cv_folds=3))
        records = runner.run_variant(clean_classification, {"completeness": 0.2}, PHASE_SIMPLE, seed=1)
        assert len(records) == 2
        assert {r.algorithm for r in records} == {"decision_tree", "naive_bayes"}
        assert all(r.injections == {"completeness": 0.2} for r in records)
        assert all(0.0 <= r.metrics["accuracy"] <= 1.0 for r in records)
        assert all(r.quality_scores["completeness"] < 1.0 for r in records)

    def test_run_requires_datasets(self):
        runner = ExperimentRunner(UserProfile(algorithms=("one_r",)))
        with pytest.raises(ExperimentError):
            runner.run([])

    def test_full_run_record_count(self, small_knowledge_base):
        # 4 algorithms x (1 clean + 3 criteria x 2 severities + 3 mixed pairs) = 4 x 10
        assert len(small_knowledge_base) == 40
        phases = {record.phase for record in small_knowledge_base}
        assert phases == {PHASE_CLEAN, PHASE_SIMPLE, PHASE_MIXED}


class TestKnowledgeBase:
    def test_query_filters(self, small_knowledge_base):
        knn_records = small_knowledge_base.query(algorithm="knn")
        assert all(r.algorithm == "knn" for r in knn_records)
        clean = small_knowledge_base.query(phase=PHASE_CLEAN)
        assert all(not r.injections for r in clean)
        completeness = small_knowledge_base.query(injected="completeness")
        assert all("completeness" in r.injections for r in completeness)
        predicate = small_knowledge_base.query(predicate=lambda r: r.metrics["accuracy"] > 0.99)
        assert all(r.metrics["accuracy"] > 0.99 for r in predicate)

    def test_algorithms_criteria_datasets(self, small_knowledge_base):
        assert set(small_knowledge_base.algorithms()) == {"decision_tree", "naive_bayes", "knn", "one_r"}
        assert "completeness" in small_knowledge_base.criteria()
        assert len(small_knowledge_base.datasets()) == 1

    def test_mean_metric(self, small_knowledge_base):
        value = small_knowledge_base.mean_metric("naive_bayes")
        assert 0.0 <= value <= 1.0
        with pytest.raises(KnowledgeBaseError):
            small_knowledge_base.mean_metric("nonexistent")

    def test_sensitivity_table_monotone_decline(self, small_knowledge_base):
        table = small_knowledge_base.sensitivity_table("completeness")
        for algorithm, by_severity in table.items():
            severities = sorted(by_severity)
            assert severities == [0.2, 0.4]
        with pytest.raises(KnowledgeBaseError):
            small_knowledge_base.sensitivity_table("outliers")

    def test_robustness_ranking(self, small_knowledge_base):
        ranking = small_knowledge_base.robustness_ranking("completeness")
        assert len(ranking) == 4
        drops = [drop for _, drop in ranking]
        assert drops == sorted(drops)

    def test_nearest_records(self, small_knowledge_base, clean_classification):
        profile = measure_quality(clean_classification, criteria=("completeness", "accuracy", "balance"))
        nearest = small_knowledge_base.nearest_records(profile, k=5)
        assert len(nearest) == 5
        distances = [d for d, _ in nearest]
        assert distances == sorted(distances)

    def test_nearest_records_empty_kb(self, clean_classification):
        profile = measure_quality(clean_classification, criteria=("completeness",))
        with pytest.raises(KnowledgeBaseError):
            KnowledgeBase().nearest_records(profile)

    def test_json_roundtrip(self, small_knowledge_base, tmp_path):
        path = tmp_path / "kb.json"
        small_knowledge_base.to_json(path)
        restored = KnowledgeBase.from_json(path)
        assert len(restored) == len(small_knowledge_base)
        assert restored.algorithms() == small_knowledge_base.algorithms()

    def test_json_roundtrip_from_string(self, small_knowledge_base):
        restored = KnowledgeBase.from_json(small_knowledge_base.to_json())
        assert len(restored) == len(small_knowledge_base)

    def test_sqlite_roundtrip(self, small_knowledge_base, tmp_path):
        path = small_knowledge_base.to_sqlite(tmp_path / "kb.db")
        restored = KnowledgeBase.from_sqlite(path)
        assert len(restored) == len(small_knowledge_base)
        assert restored.summary()["n_algorithms"] == 4

    def test_sqlite_missing_file_rejected(self, tmp_path):
        with pytest.raises(KnowledgeBaseError):
            KnowledgeBase.from_sqlite(tmp_path / "nope.db")

    def test_summary_and_empty_kb(self, small_knowledge_base):
        summary = small_knowledge_base.summary()
        assert summary["n_records"] == len(small_knowledge_base)
        with pytest.raises(KnowledgeBaseError):
            KnowledgeBase().summary()
