"""Tests for the benchmark sweep helpers and assorted edge-case behaviours."""

from __future__ import annotations

import pytest

from benchmarks._sweep import degradation, most_robust, sensitivity_sweep, sweep_rows
from repro.datasets import make_classification_dataset
from repro.lod.graph import Graph
from repro.lod.tabulate import tabulate_entities
from repro.lod.terms import Literal
from repro.lod.vocabulary import Namespace, RDFS
from repro.mining.rule_induction import _MISSING, _bin_edges, _discretise_value
from repro.tabular.dataset import ColumnType, Dataset
from repro.tabular.transforms import pivot_counts

EX = Namespace("http://example.org/")


class TestSweepHelpers:
    @pytest.fixture(scope="class")
    def sweep(self):
        dataset = make_classification_dataset(n_rows=80, n_numeric=2, n_categorical=1, seed=4)
        return sensitivity_sweep(
            dataset,
            "completeness",
            severities=(0.0, 0.4),
            algorithms=("naive_bayes", "one_r"),
            cv_folds=3,
        )

    def test_sweep_structure(self, sweep):
        assert set(sweep) == {"naive_bayes", "one_r"}
        for by_severity in sweep.values():
            assert set(by_severity) == {0.0, 0.4}
            assert all(0.0 <= value <= 1.0 for value in by_severity.values())

    def test_sweep_rows_are_sorted_by_algorithm(self, sweep):
        rows = sweep_rows(sweep)
        assert [row[0] for row in rows] == ["naive_bayes", "one_r"]
        assert len(rows[0]) == 3  # algorithm + two severities

    def test_degradation_non_negative_for_monotone_results(self):
        results = {"algo": {0.0: 0.9, 0.5: 0.7}}
        assert degradation(results, "algo") == pytest.approx(0.2)

    def test_most_robust_picks_smallest_drop(self):
        results = {"fragile": {0.0: 0.95, 0.5: 0.6}, "sturdy": {0.0: 0.9, 0.5: 0.85}}
        assert most_robust(results) == "sturdy"


class TestRuleInductionDiscretisation:
    def test_bin_edges_constant_column(self):
        assert _bin_edges([3.0, 3.0, 3.0], bins=4) == [3.0]

    def test_discretise_missing_and_non_numeric(self):
        assert _discretise_value(None, [1.0, 2.0]) == _MISSING
        assert _discretise_value("not-a-number", [1.0, 2.0]) == _MISSING

    def test_discretise_assigns_monotone_bins(self):
        edges = [1.0, 2.0, 3.0]
        bins = [_discretise_value(v, edges) for v in (0.5, 1.5, 2.5, 9.0)]
        assert bins == ["bin0", "bin1", "bin2", "bin3"]


class TestTabulateColumnNaming:
    def test_predicate_labels_become_column_names(self):
        graph = Graph()
        nitrogen = EX["prop/no2Level"]
        graph.add(nitrogen, RDFS.label, Literal("Nitrogen Dioxide"))
        graph.add_resource(EX["r1"], rdf_type=EX.Reading, properties={nitrogen: Literal(12.5)})
        graph.add_resource(EX["r2"], rdf_type=EX.Reading, properties={nitrogen: Literal(30.0)})
        dataset = tabulate_entities(graph, EX.Reading)
        assert "nitrogen_dioxide" in dataset.column_names

    def test_colliding_local_names_get_suffixes(self):
        graph = Graph()
        a = EX["vocabA/value"]
        b = EX["vocabB/value"]
        graph.add_resource(EX["e1"], rdf_type=EX.Entity, properties={a: Literal(1), b: Literal(2)})
        dataset = tabulate_entities(graph, EX.Entity)
        value_columns = [name for name in dataset.column_names if name.startswith("value")]
        assert len(value_columns) == 2
        assert len(set(value_columns)) == 2


class TestPivotCountsEdgeCases:
    def test_missing_cells_are_ignored(self):
        dataset = Dataset.from_dict(
            {"district": ["north", "north", None, "south"], "topic": ["waste", None, "noise", "waste"]},
            ctypes={"district": ColumnType.CATEGORICAL, "topic": ColumnType.CATEGORICAL},
        )
        pivoted = pivot_counts(dataset, "district", "topic")
        north = next(row for row in pivoted.iter_rows() if row["district"] == "north")
        assert north["topic=waste"] == 1
        total = sum(
            row[name]
            for row in pivoted.iter_rows()
            for name in pivoted.column_names
            if name.startswith("topic=")
        )
        assert total == 2  # only the fully observed pairs are counted
