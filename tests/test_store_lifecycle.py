"""Resource-lifecycle tests for the binary store tier.

The contract under test: every consumer of :class:`repro.store.format.StoreFile`
releases the memory map (and its file descriptor) when it is done with it —
``close()`` on the store file itself and on store-backed datasets/graphs,
automatically for the self-contained readers (``inspect_store``,
``salvage_store``) — so a store file can be deleted or replaced after use.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets import service_requests
from repro.exceptions import StoreError
from repro.lod.graph import Graph
from repro.lod.publish import publish_dataset
from repro.recovery import salvage_store
from repro.store import StoreFile, inspect_store
from repro.tabular.dataset import Dataset


def _open_fds() -> set[str]:
    """The process's open file descriptors, as resolved target paths."""
    fd_dir = Path("/proc/self/fd")
    targets = set()
    for entry in fd_dir.iterdir():
        try:
            targets.add(f"{entry.name}:{os.readlink(entry)}")
        except OSError:  # raced with a closing descriptor
            pass
    return targets


def _holds_fd(path: Path) -> bool:
    return any(target.endswith(str(path)) for target in _open_fds())


@pytest.fixture
def dataset_store(tmp_path) -> Path:
    path = tmp_path / "lifecycle.rps"
    service_requests(n_rows=60, dirty=True).save(path)
    return path


@pytest.fixture
def graph_store(tmp_path) -> Path:
    path = tmp_path / "lifecycle-graph.rps"
    graph = publish_dataset(service_requests(n_rows=40))
    graph.save(path)
    return path


def test_store_file_close_releases_descriptor(dataset_store):
    store_file = StoreFile(dataset_store)
    assert _holds_fd(dataset_store)
    store_file.close()
    assert not _holds_fd(dataset_store)
    assert store_file.closed


def test_store_file_close_is_idempotent(dataset_store):
    store_file = StoreFile(dataset_store)
    store_file.close()
    store_file.close()
    assert store_file.closed


def test_store_file_access_after_close_raises(dataset_store):
    store_file = StoreFile(dataset_store)
    store_file.close()
    with pytest.raises(StoreError, match="closed"):
        store_file.json("meta")


def test_store_file_context_manager(dataset_store):
    with StoreFile(dataset_store) as store_file:
        assert not store_file.closed
        assert _holds_fd(dataset_store)
    assert store_file.closed
    assert not _holds_fd(dataset_store)


def test_open_close_delete_cycle(dataset_store):
    """The headline bug: open a store, close it, delete the file."""
    opened = Dataset.open(dataset_store)
    assert opened.n_rows > 0
    assert _holds_fd(dataset_store)
    opened.close()
    assert not _holds_fd(dataset_store)
    dataset_store.unlink()  # would fail on platforms that lock mapped files
    assert not dataset_store.exists()


def test_dataset_close_is_idempotent_and_noop_in_memory(dataset_store):
    opened = Dataset.open(dataset_store)
    opened.close()
    opened.close()
    service_requests(n_rows=10).close()  # in-memory dataset: no-op


def test_graph_open_close_delete_cycle(graph_store):
    opened = Graph.open(graph_store)
    assert _holds_fd(graph_store)
    opened.close()
    assert not _holds_fd(graph_store)
    graph_store.unlink()
    assert not graph_store.exists()


def test_graph_close_is_noop_in_memory():
    Graph("ephemeral").close()


def test_inspect_store_releases_descriptor(dataset_store):
    summary = inspect_store(dataset_store)
    assert summary["payload"] == "dataset"
    assert not _holds_fd(dataset_store)


def test_salvage_store_releases_descriptor(dataset_store):
    result = salvage_store(dataset_store)
    assert result.report.is_clean
    assert not _holds_fd(dataset_store)
