"""Smoke tests: the runnable examples execute end to end without errors."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Examples fast enough to execute fully inside the test suite.
RUNNABLE = ["quickstart.py", "open_budget_analysis.py", "lod_publishing_roundtrip.py"]
#: Heavier examples: only imported and checked for a main() entry point.
IMPORT_ONLY = ["air_quality_advisor.py", "census_dimensionality_study.py"]


def _load_module(filename: str):
    path = EXAMPLES_DIR / filename
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contents():
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert set(RUNNABLE) | set(IMPORT_ONLY) <= present
    assert "quickstart.py" in present


@pytest.mark.parametrize("filename", RUNNABLE)
def test_example_runs_end_to_end(filename, capsys):
    module = _load_module(filename)
    module.main()
    output = capsys.readouterr().out
    assert len(output) > 200, f"{filename} should print a substantive report"


@pytest.mark.parametrize("filename", IMPORT_ONLY)
def test_heavy_example_importable(filename):
    module = _load_module(filename)
    assert callable(getattr(module, "main", None))


def test_examples_have_docstrings():
    for path in EXAMPLES_DIR.glob("*.py"):
        text = path.read_text(encoding="utf-8")
        assert text.lstrip().startswith('"""'), f"{path.name} should start with a module docstring"
