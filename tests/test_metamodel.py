"""Unit tests for the CWM-like metamodel: elements, builders, annotations, serialisation, diff."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import SchemaError
from repro.metamodel import (
    Catalog,
    DataType,
    Key,
    ModelColumn,
    ModelDiff,
    QUALITY_ANNOTATION_PREFIX,
    Schema,
    Table,
    annotate_quality,
    diff_models,
    model_from_dataset,
    model_from_lod,
    model_from_dict,
    model_to_dict,
    model_to_xmi,
    read_quality_annotations,
)
from repro.metamodel.annotations import annotate_catalog, read_quality_profile
from repro.quality import measure_quality


class TestElements:
    def test_element_requires_name(self):
        with pytest.raises(SchemaError):
            Table("")

    def test_annotations(self):
        table = Table("t")
        table.annotate("dq:completeness", 0.9)
        table.annotate("note", "x")
        assert table.annotation("dq:completeness") == 0.9
        assert table.annotation("missing", "default") == "default"
        assert table.annotations_with_prefix("dq:") == {"dq:completeness": 0.9}

    def test_table_columns(self):
        table = Table("t")
        table.add_column(ModelColumn("a", "numeric"))
        assert table.has_column("a")
        assert table.column("a").datatype.name == "numeric"
        with pytest.raises(SchemaError):
            table.add_column(ModelColumn("a", "numeric"))
        with pytest.raises(SchemaError):
            table.column("ghost")

    def test_keys_validate_columns(self):
        table = Table("t")
        table.add_column(ModelColumn("id", "string"))
        table.add_key(Key("pk", ["id"]))
        assert table.primary_key().name == "pk"
        with pytest.raises(SchemaError):
            table.add_key(Key("bad", ["ghost"]))
        with pytest.raises(SchemaError):
            Key("empty", [])

    def test_schema_and_catalog_navigation(self):
        catalog = Catalog("openbi")
        schema = catalog.add_schema(Schema("sources"))
        table = schema.add_table(Table("budget"))
        assert catalog.schema("sources") is schema
        assert catalog.find_table("budget") is table
        assert catalog.find_table("ghost") is None
        assert catalog.all_tables() == [table]
        with pytest.raises(SchemaError):
            catalog.add_schema(Schema("sources"))
        with pytest.raises(SchemaError):
            schema.add_table(Table("budget"))
        with pytest.raises(SchemaError):
            catalog.schema("ghost")
        with pytest.raises(SchemaError):
            schema.table("ghost")


class TestBuilders:
    def test_model_from_dataset(self, budget_dataset):
        catalog = model_from_dataset(budget_dataset)
        table = catalog.find_table("municipal_budget")
        assert table is not None
        assert set(table.column_names) == set(budget_dataset.column_names)
        assert table.annotation("n_rows") == budget_dataset.n_rows
        assert table.primary_key().column_names == ["line_id"]
        assert table.column("budgeted").datatype.name == "numeric"

    def test_model_from_lod(self, civic_graph):
        catalog = model_from_lod(civic_graph)
        table = catalog.find_table("AirQualityReading")
        assert table is not None
        assert table.annotation("n_rows") == 120
        column = table.column("no2")
        assert column.datatype.name == "numeric"
        assert column.annotation("coverage") == pytest.approx(1.0)

    def test_model_from_lod_requires_typed_instances(self):
        from repro.lod.graph import Graph

        with pytest.raises(ValueError):
            model_from_lod(Graph())


class TestAnnotations:
    def test_annotate_and_read(self, budget_dataset):
        catalog = model_from_dataset(budget_dataset)
        table = catalog.find_table("municipal_budget")
        profile = measure_quality(budget_dataset)
        annotate_quality(table, profile)
        scores = read_quality_annotations(table)
        assert scores["completeness"] == pytest.approx(profile.score("completeness"))
        assert "overall" in scores
        # per-column annotations landed on columns
        assert table.column("budgeted").annotation(f"{QUALITY_ANNOTATION_PREFIX}completeness") == 1.0

    def test_read_profile_roundtrip(self, budget_dataset):
        catalog = model_from_dataset(budget_dataset)
        table = catalog.find_table("municipal_budget")
        profile = measure_quality(budget_dataset)
        annotate_quality(table, profile)
        restored = read_quality_profile(table)
        assert restored.as_dict() == pytest.approx(profile.as_dict())

    def test_read_without_annotations_rejected(self):
        with pytest.raises(SchemaError):
            read_quality_annotations(Table("bare"))
        with pytest.raises(SchemaError):
            read_quality_profile(Table("bare"))

    def test_annotate_catalog(self, budget_dataset, air_quality_dataset):
        catalog = Catalog("c")
        schema = catalog.add_schema(Schema("s"))
        schema.add_table(model_from_dataset(budget_dataset).find_table("municipal_budget"))
        schema.add_table(model_from_dataset(air_quality_dataset).find_table("air_quality"))
        profiles = {"municipal_budget": measure_quality(budget_dataset)}
        annotate_catalog(catalog, profiles)
        assert read_quality_annotations(catalog.find_table("municipal_budget"))
        with pytest.raises(SchemaError):
            read_quality_annotations(catalog.find_table("air_quality"))


class TestSerialization:
    def test_dict_roundtrip(self, budget_dataset):
        catalog = model_from_dataset(budget_dataset)
        annotate_quality(catalog.find_table("municipal_budget"), measure_quality(budget_dataset))
        payload = json.loads(json.dumps(model_to_dict(catalog)))
        restored = model_from_dict(payload)
        table = restored.find_table("municipal_budget")
        assert table is not None
        assert set(table.column_names) == set(budget_dataset.column_names)
        assert read_quality_annotations(table)

    def test_missing_name_rejected(self):
        with pytest.raises(SchemaError):
            model_from_dict({})

    def test_xmi_output(self, budget_dataset):
        catalog = model_from_dataset(budget_dataset)
        xmi = model_to_xmi(catalog)
        assert xmi.startswith("<XMI")
        assert "CWM.Table" in xmi and "CWM.Column" in xmi
        assert 'name="municipal_budget"' in xmi


class TestDiff:
    def test_identical_models(self, budget_dataset):
        a = model_from_dataset(budget_dataset)
        b = model_from_dataset(budget_dataset)
        diff = diff_models(a, b)
        assert diff.is_empty()
        assert "identical" in diff.summary()

    def test_added_and_removed_columns(self, budget_dataset):
        old = model_from_dataset(budget_dataset)
        new = model_from_dataset(budget_dataset.drop_columns(["executed"]).add_column(
            budget_dataset["budgeted"].copy().with_values(budget_dataset["budgeted"].tolist())
        ) if False else budget_dataset.drop_columns(["executed"]))
        diff = diff_models(old, new)
        assert diff.removed_columns == {"municipal_budget": ["executed"]}
        assert not diff.is_empty()

    def test_added_table_and_retyped_column(self, budget_dataset, air_quality_dataset):
        old = model_from_dataset(budget_dataset)
        new_catalog = model_from_dataset(budget_dataset)
        new_catalog.schema("sources").add_table(
            model_from_dataset(air_quality_dataset).find_table("air_quality")
        )
        new_catalog.find_table("municipal_budget").column("year").datatype = DataType("numeric")
        diff = diff_models(old, new_catalog)
        assert diff.added_tables == ["air_quality"]
        assert diff.retyped_columns["municipal_budget"][0][0] == "year"
        assert "retyped" in diff.summary()

    def test_model_diff_dataclass_defaults(self):
        assert ModelDiff().is_empty()
