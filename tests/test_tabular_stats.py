"""Unit tests for repro.tabular.stats."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.tabular.dataset import Column, ColumnType, Dataset
from repro.tabular.stats import (
    categorical_summary,
    correlation_matrix,
    correlation_ratio,
    cramers_v,
    describe,
    entropy,
    frequency_table,
    gini_impurity,
    mutual_information,
    numeric_summary,
    pearson,
    spearman,
)


class TestSummaries:
    def test_numeric_summary(self):
        column = Column("x", [1.0, 2.0, 3.0, 4.0, None])
        summary = numeric_summary(column)
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0 and summary["max"] == 4.0

    def test_numeric_summary_requires_numeric(self):
        with pytest.raises(SchemaError):
            numeric_summary(Column("c", ["a", "b"], ctype=ColumnType.CATEGORICAL))

    def test_numeric_summary_all_missing(self):
        summary = numeric_summary(Column("x", [None, None], ctype=ColumnType.NUMERIC))
        assert summary["count"] == 0

    def test_categorical_summary(self):
        column = Column("c", ["a", "a", "b", None], ctype=ColumnType.CATEGORICAL)
        summary = categorical_summary(column)
        assert summary["mode"] == "a" and summary["mode_freq"] == 2
        assert summary["n_distinct"] == 2

    def test_describe_mixes_types(self, tiny_dataset):
        description = describe(tiny_dataset)
        assert "mean" in description["amount"]
        assert "mode" in description["district"]


class TestCorrelations:
    def test_pearson_perfect(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert pearson(x, [2 * v for v in x]) == pytest.approx(1.0)
        assert pearson(x, [-v for v in x]) == pytest.approx(-1.0)

    def test_pearson_handles_missing_pairs(self):
        assert not math.isnan(pearson([1, 2, 3, None], [2, 4, 6, 8]))

    def test_pearson_constant_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_pearson_length_mismatch(self):
        with pytest.raises(SchemaError):
            pearson([1, 2], [1, 2, 3])

    def test_spearman_monotonic(self):
        x = [1.0, 2.0, 3.0, 4.0, 5.0]
        y = [v ** 3 for v in x]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_spearman_with_ties(self):
        value = spearman([1, 2, 2, 3], [1, 2, 2, 3])
        assert value == pytest.approx(1.0)

    def test_correlation_matrix_symmetric(self, budget_dataset):
        names, matrix = correlation_matrix(budget_dataset)
        assert matrix.shape == (len(names), len(names))
        assert np.allclose(matrix, matrix.T, equal_nan=True)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_correlation_matrix_unknown_method(self, budget_dataset):
        with pytest.raises(SchemaError):
            correlation_matrix(budget_dataset, method="kendall")


class TestInformationMeasures:
    def test_entropy_uniform_is_maximal(self):
        uniform = Column("c", ["a", "b", "c", "d"], ctype=ColumnType.CATEGORICAL)
        skewed = Column("c", ["a", "a", "a", "b"], ctype=ColumnType.CATEGORICAL)
        assert entropy(uniform) > entropy(skewed)
        assert entropy(uniform) == pytest.approx(2.0)

    def test_entropy_single_value_is_zero(self):
        assert entropy(Column("c", ["a", "a"], ctype=ColumnType.CATEGORICAL)) == 0.0

    def test_mutual_information_identical_columns(self):
        a = Column("a", ["x", "y", "x", "y"], ctype=ColumnType.CATEGORICAL)
        b = Column("b", ["x", "y", "x", "y"], ctype=ColumnType.CATEGORICAL)
        assert mutual_information(a, b) == pytest.approx(entropy(a))

    def test_mutual_information_independent_columns(self):
        a = Column("a", ["x", "x", "y", "y"], ctype=ColumnType.CATEGORICAL)
        b = Column("b", ["p", "q", "p", "q"], ctype=ColumnType.CATEGORICAL)
        assert mutual_information(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_cramers_v_perfect_association(self):
        a = Column("a", ["x", "x", "y", "y"] * 5, ctype=ColumnType.CATEGORICAL)
        b = Column("b", ["p", "p", "q", "q"] * 5, ctype=ColumnType.CATEGORICAL)
        assert cramers_v(a, b) == pytest.approx(1.0)

    def test_cramers_v_single_level_is_zero(self):
        a = Column("a", ["x", "x"], ctype=ColumnType.CATEGORICAL)
        b = Column("b", ["p", "q"], ctype=ColumnType.CATEGORICAL)
        assert cramers_v(a, b) == 0.0

    def test_correlation_ratio_strong_group_effect(self):
        groups = Column("g", ["a"] * 10 + ["b"] * 10, ctype=ColumnType.CATEGORICAL)
        values = Column("v", [1.0] * 10 + [10.0] * 10)
        assert correlation_ratio(groups, values) == pytest.approx(1.0)

    def test_correlation_ratio_requires_numeric_values(self):
        groups = Column("g", ["a", "b"], ctype=ColumnType.CATEGORICAL)
        with pytest.raises(SchemaError):
            correlation_ratio(groups, Column("v", ["x", "y"], ctype=ColumnType.CATEGORICAL))

    def test_gini_impurity(self):
        pure = Column("c", ["a", "a", "a"], ctype=ColumnType.CATEGORICAL)
        mixed = Column("c", ["a", "b"], ctype=ColumnType.CATEGORICAL)
        assert gini_impurity(pure) == 0.0
        assert gini_impurity(mixed) == pytest.approx(0.5)

    def test_frequency_table(self):
        column = Column("c", ["a", "a", "b"], ctype=ColumnType.CATEGORICAL)
        assert frequency_table(column) == {"a": 2.0, "b": 1.0}
        relative = frequency_table(column, normalise=True)
        assert relative["a"] == pytest.approx(2 / 3)
