"""Unit tests for the Graph wrapper and the SPARQL-like query engine."""

from __future__ import annotations

import pytest

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.query import TriplePattern, Variable, ask, count, select
from repro.lod.terms import IRI, Literal
from repro.lod.vocabulary import Namespace, RDF, RDFS

EX = Namespace("http://example.org/")


@pytest.fixture
def graph():
    g = Graph("http://example.org/graph/test")
    g.bind("ex", EX)
    g.add_resource(EX["alicante"], rdf_type=EX.City, label="Alicante",
                   properties={EX.population: 330000, EX.province: Literal("Alicante")})
    g.add_resource(EX["elche"], rdf_type=EX.City, label="Elche",
                   properties={EX.population: 230000, EX.province: Literal("Alicante")})
    g.add_resource(EX["matanzas"], rdf_type=EX.City, label="Matanzas",
                   properties={EX.population: 145000, EX.province: Literal("Matanzas")})
    g.add_resource(EX["valencia_region"], rdf_type=EX.Region, label="Valencian Community")
    return g


class TestGraph:
    def test_add_and_len(self, graph):
        assert len(graph) == 14

    def test_add_resource_with_list_values(self):
        g = Graph()
        g.add_resource(EX["x"], properties={EX.tag: ["a", "b"]})
        assert len(g) == 2

    def test_subjects_of_type(self, graph):
        assert len(graph.subjects_of_type(EX.City)) == 3
        assert len(graph.subjects_of_type(EX.Region)) == 1

    def test_value_unwraps_literals(self, graph):
        assert graph.value(EX["alicante"], EX.population) == 330000
        assert graph.value(EX["alicante"], EX.mayor, default="unknown") == "unknown"

    def test_label(self, graph):
        assert graph.label(EX["elche"]) == "Elche"
        assert graph.label(EX["nowhere"]) is None

    def test_properties_of(self, graph):
        properties = graph.properties_of(EX["alicante"])
        assert EX.population in properties and RDF.type in properties

    def test_types_histogram(self, graph):
        histogram = graph.types()
        assert histogram[EX.City] == 3
        assert histogram[EX.Region] == 1

    def test_predicates_histogram(self, graph):
        histogram = graph.predicates_histogram()
        assert histogram[EX.population] == 3

    def test_merge_and_copy(self, graph):
        other = Graph("http://example.org/graph/other")
        other.add_resource(EX["murcia"], rdf_type=EX.City, label="Murcia")
        merged = graph.copy()
        added = merged.merge(other)
        assert added == 2
        assert len(merged) == len(graph) + 2
        # copy independence
        assert len(graph.subjects_of_type(EX.City)) == 3

    def test_remove(self, graph):
        triple = next(graph.triples(EX["alicante"], EX.population, None))
        assert graph.remove(triple)
        assert graph.value(EX["alicante"], EX.population) is None

    def test_new_bnode_unique(self, graph):
        assert graph.new_bnode() != graph.new_bnode()


class TestQuery:
    def test_simple_select(self, graph):
        results = select(graph, [TriplePattern(Variable("s"), RDF.type, EX.City)])
        assert len(results) == 3

    def test_join_across_patterns(self, graph):
        results = select(
            graph,
            [
                TriplePattern(Variable("s"), RDF.type, EX.City),
                TriplePattern(Variable("s"), EX.province, Literal("Alicante")),
            ],
        )
        assert len(results) == 2

    def test_projection_and_distinct(self, graph):
        results = select(
            graph,
            [TriplePattern(Variable("s"), EX.province, Variable("p"))],
            variables=["p"],
            distinct=True,
        )
        assert len(results) == 2

    def test_projection_of_unbound_variable_rejected(self, graph):
        with pytest.raises(LODError):
            select(graph, [TriplePattern(Variable("s"), RDF.type, EX.City)], variables=["ghost"])

    def test_filter_where(self, graph):
        results = select(
            graph,
            [TriplePattern(Variable("s"), EX.population, Variable("pop"))],
            where=lambda binding: binding["pop"].python_value() > 200000,
        )
        assert len(results) == 2

    def test_order_by_and_limit(self, graph):
        results = select(
            graph,
            [TriplePattern(Variable("s"), EX.population, Variable("pop"))],
            order_by="pop",
            descending=True,
            limit=1,
        )
        assert results[0]["s"] == EX["alicante"]

    def test_empty_patterns_rejected(self, graph):
        with pytest.raises(LODError):
            select(graph, [])

    def test_variable_predicate(self, graph):
        results = select(
            graph,
            [TriplePattern(EX["matanzas"], Variable("p"), Variable("o"))],
        )
        assert len(results) == 4  # rdf:type, rdfs:label, population, province

    def test_ask(self, graph):
        assert ask(graph, [TriplePattern(EX["alicante"], RDF.type, EX.City)])
        assert not ask(graph, [TriplePattern(EX["alicante"], RDF.type, EX.Region)])

    def test_count_and_distinct_count(self, graph):
        patterns = [TriplePattern(Variable("s"), EX.province, Variable("p"))]
        assert count(graph, patterns) == 3
        assert count(graph, patterns, distinct_variable="p") == 2

    def test_no_solutions(self, graph):
        results = select(graph, [TriplePattern(Variable("s"), EX.mayor, Variable("m"))])
        assert results == []
