"""Property-based tests for the triple store and the N-Triples round trip."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.lod.graph import Graph
from repro.lod.serialization import parse_ntriples, to_ntriples
from repro.lod.terms import IRI, Literal, Triple
from repro.lod.triples import TripleStore
from repro.lod.vocabulary import Namespace

EX = Namespace("http://example.org/")

_subjects = st.sampled_from([EX[f"s{i}"] for i in range(6)])
_predicates = st.sampled_from([EX[f"p{i}"] for i in range(4)])
_literal_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20),
)
_objects = st.one_of(_subjects, _literal_values.map(Literal))
_triples = st.builds(Triple, _subjects, _predicates, _objects)
_triple_lists = st.lists(_triples, max_size=60)


@given(_triple_lists)
@settings(max_examples=50, deadline=None)
def test_store_behaves_like_a_set(triples):
    store = TripleStore(triples)
    assert len(store) == len(set(triples))
    for triple in triples:
        assert triple in store
    assert set(iter(store)) == set(triples)


@given(_triple_lists)
@settings(max_examples=50, deadline=None)
def test_match_is_consistent_with_full_scan(triples):
    store = TripleStore(triples)
    for triple in list(set(triples))[:10]:
        by_subject = set(store.match(subject=triple.subject))
        by_predicate = set(store.match(predicate=triple.predicate))
        by_object = set(store.match(object=triple.object))
        full = set(iter(store))
        assert by_subject == {t for t in full if t.subject == triple.subject}
        assert by_predicate == {t for t in full if t.predicate == triple.predicate}
        assert by_object == {t for t in full if t.object == triple.object}


@given(_triple_lists)
@settings(max_examples=50, deadline=None)
def test_discard_removes_exactly_one_element(triples):
    store = TripleStore(triples)
    unique = list(set(triples))
    if not unique:
        return
    victim = unique[0]
    assert store.discard(victim)
    assert victim not in store
    assert len(store) == len(unique) - 1
    assert not store.discard(victim)


@given(_triple_lists)
@settings(max_examples=40, deadline=None)
def test_ntriples_roundtrip_is_lossless(triples):
    graph = Graph()
    for triple in triples:
        graph.add_triple(triple)
    parsed = parse_ntriples(to_ntriples(graph))
    assert len(parsed) == len(graph)
    for triple in graph:
        obj = triple.object
        if isinstance(obj, Literal) and isinstance(obj.value, float):
            # floats round-trip through xsd:double; compare via the store contents
            matches = list(parsed.triples(triple.subject, triple.predicate, None))
            assert any(
                isinstance(m.object, Literal)
                and isinstance(m.object.value, (int, float))
                and not isinstance(m.object.value, bool)
                and abs(float(m.object.value) - obj.value) < 1e-9
                for m in matches
            )
        else:
            assert any(True for _ in parsed.triples(triple.subject, triple.predicate, None))
