"""Unit tests shared across all classifiers plus algorithm-specific behaviour."""

from __future__ import annotations

import pytest

from repro.core.injection import MissingValuesInjector
from repro.datasets import make_classification_dataset
from repro.exceptions import MiningError
from repro.mining import (
    CLASSIFIER_REGISTRY,
    DecisionTreeClassifier,
    KNNClassifier,
    LogisticRegressionClassifier,
    NaiveBayesClassifier,
    OneRClassifier,
    PrismClassifier,
    train_test_split,
)
from repro.tabular.dataset import Column, ColumnType, Dataset

ALL_CLASSIFIERS = sorted(CLASSIFIER_REGISTRY)


@pytest.fixture(scope="module")
def train_test():
    dataset = make_classification_dataset(n_rows=160, n_numeric=3, n_categorical=1, seed=11)
    return train_test_split(dataset, test_fraction=0.3, seed=1)


@pytest.mark.parametrize("name", ALL_CLASSIFIERS)
class TestAllClassifiers:
    def test_learns_separable_data(self, name, train_test):
        train, test = train_test
        model = CLASSIFIER_REGISTRY[name]().fit(train)
        assert model.score(test) > 0.7

    def test_predict_before_fit_rejected(self, name, train_test):
        _, test = train_test
        with pytest.raises(MiningError):
            CLASSIFIER_REGISTRY[name]().predict(test)

    def test_predictions_are_known_classes(self, name, train_test):
        train, test = train_test
        model = CLASSIFIER_REGISTRY[name]().fit(train)
        predictions = model.predict(test)
        assert len(predictions) == test.n_rows
        assert set(str(p) for p in predictions) <= set(model.classes_)

    def test_predict_proba_normalised(self, name, train_test):
        train, test = train_test
        model = CLASSIFIER_REGISTRY[name]().fit(train)
        for distribution in model.predict_proba(test.head(10)):
            assert set(distribution) == set(model.classes_)
            assert sum(distribution.values()) == pytest.approx(1.0, abs=1e-6)

    def test_tolerates_missing_values_at_predict_time(self, name, train_test):
        train, test = train_test
        holed = MissingValuesInjector().apply(test, 0.3, seed=2)
        model = CLASSIFIER_REGISTRY[name]().fit(train)
        predictions = model.predict(holed)
        assert len(predictions) == holed.n_rows

    def test_describe_reports_metadata(self, name, train_test):
        train, _ = train_test
        model = CLASSIFIER_REGISTRY[name]().fit(train)
        description = model.describe()
        assert description["algorithm"] == name
        assert description["target"] == "target"

    def test_fit_requires_target(self, name):
        from repro.exceptions import ReproError

        dataset = Dataset.from_dict({"a": [1.0, 2.0, 3.0, 4.0]})
        with pytest.raises(ReproError):
            CLASSIFIER_REGISTRY[name]().fit(dataset)


class TestDecisionTree:
    def test_rules_and_structure(self, train_test):
        train, _ = train_test
        tree = DecisionTreeClassifier(max_depth=4).fit(train)
        assert 0 < tree.depth() <= 4
        assert tree.n_leaves() >= 2
        rules = tree.extract_rules()
        assert all(rule["prediction"] in tree.classes_ for rule in rules)
        assert all(0.0 <= rule["confidence"] <= 1.0 for rule in rules)

    def test_pure_leaf_on_trivial_data(self):
        dataset = Dataset.from_dict(
            {"x": [0.0, 0.0, 1.0, 1.0] * 5, "target": ["a", "a", "b", "b"] * 5}
        ).set_target("target")
        tree = DecisionTreeClassifier(min_samples_split=2).fit(dataset)
        assert tree.score(dataset) == 1.0

    def test_categorical_splits(self):
        dataset = Dataset.from_dict(
            {
                "colour": ["red", "blue"] * 20,
                "target": ["warm", "cold"] * 20,
            },
            ctypes={"colour": ColumnType.CATEGORICAL},
        ).set_target("target")
        tree = DecisionTreeClassifier(min_samples_split=2).fit(dataset)
        assert tree.score(dataset) == 1.0
        assert tree.root_.feature == "colour"

    def test_max_depth_zero_gives_majority_leaf(self, train_test):
        train, test = train_test
        stump = DecisionTreeClassifier(max_depth=0).fit(train)
        assert stump.n_leaves() == 1
        assert len(set(stump.predict(test))) == 1

    def test_invalid_criterion_rejected(self):
        with pytest.raises(MiningError):
            DecisionTreeClassifier(criterion="gini_ratio")


class TestNaiveBayes:
    def test_laplace_must_be_positive(self):
        with pytest.raises(MiningError):
            NaiveBayesClassifier(laplace=0.0)

    def test_unseen_category_does_not_crash(self, train_test):
        train, test = train_test
        model = NaiveBayesClassifier().fit(train)
        modified = test.replace_column(
            Column("cat_0", ["never_seen_level"] * test.n_rows, ctype=ColumnType.CATEGORICAL)
        )
        assert len(model.predict(modified)) == test.n_rows

    def test_priors_reflect_class_frequencies(self):
        dataset = Dataset.from_dict(
            {"x": [1.0] * 9 + [5.0], "target": ["a"] * 9 + ["b"]}
        ).set_target("target")
        model = NaiveBayesClassifier().fit(dataset)
        assert model._priors["a"] == pytest.approx(0.9)


class TestKNN:
    def test_k_validation(self):
        with pytest.raises(MiningError):
            KNNClassifier(k=0)

    def test_k_larger_than_training_set(self):
        dataset = Dataset.from_dict({"x": [0.0, 1.0, 5.0, 6.0], "target": ["a", "a", "b", "b"]}).set_target("target")
        model = KNNClassifier(k=50).fit(dataset)
        assert len(model.predict(dataset)) == 4

    def test_weighted_voting(self, train_test):
        train, test = train_test
        weighted = KNNClassifier(k=5, weighted=True).fit(train)
        assert weighted.score(test) > 0.7

    def test_exact_neighbour_wins(self):
        dataset = Dataset.from_dict({"x": [0.0, 10.0], "target": ["a", "b"]}).set_target("target")
        model = KNNClassifier(k=1).fit(dataset)
        probe = Dataset.from_dict({"x": [0.1], "target": ["?"]}).set_target("target")
        assert model.predict(probe) == ["a"]


class TestLogisticRegression:
    def test_parameter_validation(self):
        with pytest.raises(MiningError):
            LogisticRegressionClassifier(learning_rate=0.0)
        with pytest.raises(MiningError):
            LogisticRegressionClassifier(epochs=0)

    def test_coefficients_exposed(self, train_test):
        train, _ = train_test
        model = LogisticRegressionClassifier(epochs=50).fit(train)
        coefficients = model.coefficients()
        assert set(next(iter(coefficients.values()))) == set(model.classes_)

    def test_multiclass(self):
        dataset = make_classification_dataset(n_rows=150, n_classes=3, seed=5)
        train, test = train_test_split(dataset, seed=2)
        model = LogisticRegressionClassifier(epochs=200).fit(train)
        assert model.score(test) > 0.7
        assert len(model.classes_) == 3


class TestRuleInduction:
    def test_one_r_selects_informative_feature(self):
        dataset = Dataset.from_dict(
            {
                "useless": ["x"] * 40,
                "useful": ["p", "q"] * 20,
                "target": ["a", "b"] * 20,
            },
            ctypes={"useless": ColumnType.CATEGORICAL, "useful": ColumnType.CATEGORICAL},
        ).set_target("target")
        model = OneRClassifier().fit(dataset)
        assert model.best_feature_ == "useful"
        assert model.score(dataset) == 1.0
        assert model.describe()["selected_feature"] == "useful"

    def test_one_r_bins_validation(self):
        with pytest.raises(MiningError):
            OneRClassifier(bins=1)

    def test_prism_rules_are_readable(self, train_test):
        train, _ = train_test
        model = PrismClassifier(max_rules_per_class=10).fit(train)
        texts = model.rule_texts()
        assert texts
        assert all(text.startswith("IF ") and "THEN class =" in text for text in texts)
        assert model.describe()["n_rules"] == len(texts)

    def test_prism_perfect_on_deterministic_data(self):
        dataset = Dataset.from_dict(
            {
                "district": ["centre", "north"] * 20,
                "target": ["rich", "poor"] * 20,
            },
            ctypes={"district": ColumnType.CATEGORICAL},
        ).set_target("target")
        model = PrismClassifier().fit(dataset)
        assert model.score(dataset) == 1.0

    def test_prism_falls_back_to_default_class(self, train_test):
        train, _ = train_test
        model = PrismClassifier().fit(train)
        empty_row = Dataset.from_dict(
            {name: [None] for name in train.feature_names()} | {"target": ["class_0"]},
            ctypes={c.name: c.ctype for c in train.feature_columns()},
        ).set_target("target")
        prediction = model.predict(empty_row)
        assert prediction[0] in model.classes_
