"""Property-based tests for quality criteria, injectors, metrics and the KB distance."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.injection import INJECTOR_REGISTRY, get_injector
from repro.datasets import make_classification_dataset
from repro.mining.metrics import accuracy, cohen_kappa, macro_f1, rule_interestingness
from repro.quality import measure_quality
from repro.quality.profile import DEFAULT_CRITERIA

# A single reusable clean dataset keeps the property tests fast.
_CLEAN = make_classification_dataset(n_rows=60, n_numeric=2, n_categorical=1, seed=13)

_injector_names = st.sampled_from(sorted(INJECTOR_REGISTRY))
_severities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_labels = st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40)


@given(_injector_names, _severities, st.integers(min_value=0, max_value=50))
@settings(max_examples=60, deadline=None)
def test_quality_scores_always_in_unit_interval(name, severity, seed):
    """Whatever is injected at whatever severity, every criterion stays in [0, 1]."""
    degraded = get_injector(name).apply(_CLEAN, severity, seed=seed)
    profile = measure_quality(degraded)
    for criterion, score in profile.as_dict().items():
        assert 0.0 <= score <= 1.0, (name, severity, criterion, score)
    assert set(profile.criteria()) == set(DEFAULT_CRITERIA)


@given(_injector_names, st.integers(min_value=0, max_value=20))
@settings(max_examples=40, deadline=None)
def test_injectors_never_mutate_their_input(name, seed):
    reference = _CLEAN.copy()
    get_injector(name).apply(_CLEAN, 0.7, seed=seed)
    assert _CLEAN == reference


@given(_injector_names, _severities, st.integers(min_value=0, max_value=20))
@settings(max_examples=40, deadline=None)
def test_injectors_deterministic_given_seed(name, severity, seed):
    a = get_injector(name).apply(_CLEAN, severity, seed=seed)
    b = get_injector(name).apply(_CLEAN, severity, seed=seed)
    assert a == b


@given(_labels)
@settings(max_examples=60, deadline=None)
def test_accuracy_and_f1_bounds(truth):
    """Metrics of a perfect prediction are 1; of any prediction they stay in [0, 1]."""
    assert accuracy(truth, truth) == 1.0
    assert macro_f1(truth, truth) == 1.0
    rotated = truth[1:] + truth[:1]
    assert 0.0 <= accuracy(truth, rotated) <= 1.0
    assert 0.0 <= macro_f1(truth, rotated) <= 1.0
    assert -1.0 <= cohen_kappa(truth, rotated) <= 1.0


@given(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_rule_interestingness_consistency(support_antecedent, support_consequent):
    """Confidence never exceeds 1 and lift is confidence / consequent support."""
    support_rule = min(support_antecedent, support_consequent) * 0.9
    measures = rule_interestingness(support_antecedent, support_consequent, support_rule)
    assert 0.0 <= measures["confidence"] <= 1.0 + 1e-9
    if support_consequent > 0:
        assert measures["lift"] == (measures["confidence"] / support_consequent)


@given(st.integers(min_value=0, max_value=30))
@settings(max_examples=20, deadline=None)
def test_profile_distance_is_a_metric_on_samples(seed):
    """Distance is symmetric, non-negative and zero on identical profiles."""
    a = measure_quality(get_injector("completeness").apply(_CLEAN, 0.3, seed=seed))
    b = measure_quality(get_injector("accuracy").apply(_CLEAN, 0.3, seed=seed))
    assert a.distance(a) == 0.0
    assert a.distance(b) >= 0.0
    assert abs(a.distance(b) - b.distance(a)) < 1e-12
