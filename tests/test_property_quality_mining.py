"""Property-based tests for quality criteria, injectors, metrics and the KB distance."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.injection import INJECTOR_REGISTRY, get_injector
from repro.datasets import make_classification_dataset
from repro.mining.metrics import accuracy, cohen_kappa, macro_f1, rule_interestingness
from repro.quality import get_criterion, measure_quality
from repro.quality.criteria import Criterion
from repro.quality.profile import DEFAULT_CRITERIA
from repro.tabular.dataset import Column, ColumnRole, ColumnType, Dataset

# A single reusable clean dataset keeps the property tests fast.
_CLEAN = make_classification_dataset(n_rows=60, n_numeric=2, n_categorical=1, seed=13)

_injector_names = st.sampled_from(sorted(INJECTOR_REGISTRY))
_severities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_labels = st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40)

#: Spelling variants on purpose: fuzzy duplication and the accuracy criterion
#: must treat these identically on the row and encoded paths.
_CATEGORY_POOL = ("red", "Red", "  RED ", "réd", "blue", "BLUE", "green", None)
_numeric_cells = st.one_of(
    st.none(),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)


@st.composite
def _random_datasets(draw):
    """Small mixed datasets: numeric/categorical/boolean columns, missing
    cells, spelling variants and (sometimes) a target column."""
    n_rows = draw(st.integers(min_value=1, max_value=25))
    n_numeric = draw(st.integers(min_value=0, max_value=2))
    n_categorical = draw(st.integers(min_value=0 if n_numeric else 1, max_value=2))
    columns = []
    for j in range(n_numeric):
        cells = draw(st.lists(_numeric_cells, min_size=n_rows, max_size=n_rows))
        columns.append(Column(f"num_{j}", cells, ctype=ColumnType.NUMERIC))
    for j in range(n_categorical):
        cells = draw(st.lists(st.sampled_from(_CATEGORY_POOL), min_size=n_rows, max_size=n_rows))
        columns.append(Column(f"cat_{j}", cells, ctype=ColumnType.CATEGORICAL))
    if draw(st.booleans()):
        cells = draw(st.lists(st.sampled_from([True, False, None]), min_size=n_rows, max_size=n_rows))
        columns.append(Column("flag", cells, ctype=ColumnType.BOOLEAN))
    if draw(st.booleans()):
        labels = draw(st.lists(st.sampled_from(["a", "b", None]), min_size=n_rows, max_size=n_rows))
        columns.append(Column("target", labels, ctype=ColumnType.CATEGORICAL, role=ColumnRole.TARGET))
    return Dataset(columns, name="random")


def _row_path_criteria():
    forced = []
    for name in DEFAULT_CRITERIA:
        criterion = get_criterion(name)
        criterion._force_row_measure = True
        forced.append(criterion)
    return forced


@given(_injector_names, _severities, st.integers(min_value=0, max_value=50))
@settings(max_examples=60, deadline=None)
def test_quality_scores_always_in_unit_interval(name, severity, seed):
    """Whatever is injected at whatever severity, every criterion stays in [0, 1]."""
    degraded = get_injector(name).apply(_CLEAN, severity, seed=seed)
    profile = measure_quality(degraded)
    for criterion, score in profile.as_dict().items():
        assert 0.0 <= score <= 1.0, (name, severity, criterion, score)
    assert set(profile.criteria()) == set(DEFAULT_CRITERIA)


@given(_injector_names, st.integers(min_value=0, max_value=20))
@settings(max_examples=40, deadline=None)
def test_injectors_never_mutate_their_input(name, seed):
    reference = _CLEAN.copy()
    get_injector(name).apply(_CLEAN, 0.7, seed=seed)
    assert _CLEAN == reference


@given(_injector_names, _severities, st.integers(min_value=0, max_value=20))
@settings(max_examples=40, deadline=None)
def test_injectors_deterministic_given_seed(name, severity, seed):
    a = get_injector(name).apply(_CLEAN, severity, seed=seed)
    b = get_injector(name).apply(_CLEAN, severity, seed=seed)
    assert a == b


@given(_labels)
@settings(max_examples=60, deadline=None)
def test_accuracy_and_f1_bounds(truth):
    """Metrics of a perfect prediction are 1; of any prediction they stay in [0, 1]."""
    assert accuracy(truth, truth) == 1.0
    assert macro_f1(truth, truth) == 1.0
    rotated = truth[1:] + truth[:1]
    assert 0.0 <= accuracy(truth, rotated) <= 1.0
    assert 0.0 <= macro_f1(truth, rotated) <= 1.0
    assert -1.0 <= cohen_kappa(truth, rotated) <= 1.0


@given(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_rule_interestingness_consistency(support_antecedent, support_consequent):
    """Confidence never exceeds 1 and lift is confidence / consequent support."""
    support_rule = min(support_antecedent, support_consequent) * 0.9
    measures = rule_interestingness(support_antecedent, support_consequent, support_rule)
    assert 0.0 <= measures["confidence"] <= 1.0 + 1e-9
    if support_consequent > 0:
        assert measures["lift"] == (measures["confidence"] / support_consequent)


@given(_random_datasets())
@settings(max_examples=50, deadline=None)
def test_encoded_profile_equals_row_profile_on_random_datasets(dataset):
    """The encoded and row execution paths produce the same profile vector —
    bit for bit — and the same per-criterion details on arbitrary data."""
    fast = measure_quality(dataset)
    slow = measure_quality(dataset, criteria=_row_path_criteria())
    assert list(fast.as_vector(DEFAULT_CRITERIA)) == list(slow.as_vector(DEFAULT_CRITERIA))
    assert fast.to_json_dict() == slow.to_json_dict()


@given(_injector_names, _severities, st.integers(min_value=0, max_value=30))
@settings(max_examples=40, deadline=None)
def test_encoded_profile_equals_row_profile_after_injection(name, severity, seed):
    degraded = get_injector(name).apply(_CLEAN, severity, seed=seed)
    fast = measure_quality(degraded)
    slow = measure_quality(degraded, criteria=_row_path_criteria())
    assert list(fast.as_vector(DEFAULT_CRITERIA)) == list(slow.as_vector(DEFAULT_CRITERIA))
    assert fast.to_json_dict() == slow.to_json_dict()


@given(_injector_names, st.floats(min_value=0.1, max_value=0.8), st.integers(min_value=0, max_value=10))
@settings(max_examples=10, deadline=None)
def test_advisor_recommendation_identical_on_both_paths(small_knowledge_base, name, severity, seed):
    """``Advisor.advise`` recommends the same algorithm (with the same scores
    and the same measured profile) whether the quality criteria run on the
    encoded views or on the row-at-a-time reference path."""
    from repro.core.advisor import Advisor

    degraded = get_injector(name).apply(_CLEAN, severity, seed=seed)
    advisor = Advisor(small_knowledge_base, k=3)
    fast = advisor.advise(degraded)
    try:
        Criterion._force_row_measure = True
        slow = advisor.advise(degraded)
    finally:
        Criterion._force_row_measure = False
    assert fast.best_algorithm == slow.best_algorithm
    assert fast.ranked_algorithms == slow.ranked_algorithms
    assert fast.quality_profile == slow.quality_profile
    assert fast.rationale == slow.rationale


@given(st.integers(min_value=0, max_value=30))
@settings(max_examples=20, deadline=None)
def test_profile_distance_is_a_metric_on_samples(seed):
    """Distance is symmetric, non-negative and zero on identical profiles."""
    a = measure_quality(get_injector("completeness").apply(_CLEAN, 0.3, seed=seed))
    b = measure_quality(get_injector("accuracy").apply(_CLEAN, 0.3, seed=seed))
    assert a.distance(a) == 0.0
    assert a.distance(b) >= 0.0
    assert abs(a.distance(b) - b.distance(a)) < 1e-12
