"""Tests for the package metadata, exception hierarchy and public re-exports."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    DataQualityError,
    ExperimentError,
    KnowledgeBaseError,
    LODError,
    MiningError,
    OLAPError,
    ReproError,
    SchemaError,
)


class TestMetadata:
    def test_version_is_exposed(self):
        assert repro.__version__
        parts = repro.__version__.split(".")
        assert len(parts) >= 2 and all(part.isdigit() for part in parts[:2])

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} advertised in __all__ but missing"


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [SchemaError, DataQualityError, MiningError, ExperimentError, KnowledgeBaseError, LODError, OLAPError],
    )
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)
        with pytest.raises(ReproError):
            raise exception_type("boom")

    def test_catching_the_base_class_is_enough(self):
        from repro.tabular.dataset import Dataset

        try:
            Dataset([])
        except ReproError as exc:
            assert isinstance(exc, SchemaError)
        else:  # pragma: no cover - the constructor must raise
            pytest.fail("Dataset([]) should have raised")


class TestPublicAPISurfaces:
    def test_subpackage_all_lists_are_importable(self):
        import repro.bi as bi
        import repro.core as core
        import repro.lod as lod
        import repro.metamodel as metamodel
        import repro.mining as mining
        import repro.quality as quality
        import repro.tabular as tabular

        for module in (bi, core, lod, metamodel, mining, quality, tabular):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"

    def test_classifier_registry_matches_user_profile_defaults(self):
        from repro.core.profiles import DEFAULT_ALGORITHMS
        from repro.mining import CLASSIFIER_REGISTRY

        for algorithm in DEFAULT_ALGORITHMS["classification"]:
            assert algorithm in CLASSIFIER_REGISTRY

    def test_quality_criteria_cover_injectors(self):
        """Every injector except class_noise degrades a criterion we can measure."""
        from repro.core.injection import INJECTOR_REGISTRY
        from repro.quality import CRITERIA_REGISTRY

        measurable = set(CRITERIA_REGISTRY)
        for name in INJECTOR_REGISTRY:
            if name == "class_noise":
                continue
            assert name in measurable, f"injector {name!r} has no matching quality criterion"
