"""Unit tests for the bagging / random-subspace ensemble classifiers."""

from __future__ import annotations

import pytest

from repro.core.injection import ClassNoiseInjector, MissingValuesInjector
from repro.datasets import make_classification_dataset
from repro.exceptions import MiningError
from repro.mining import (
    BaggingClassifier,
    CLASSIFIER_REGISTRY,
    DecisionTreeClassifier,
    NaiveBayesClassifier,
    RandomSubspaceForest,
    cross_validate,
    train_test_split,
)


@pytest.fixture(scope="module")
def train_test():
    dataset = make_classification_dataset(n_rows=180, n_numeric=3, n_categorical=1, seed=21)
    return train_test_split(dataset, test_fraction=0.3, seed=2)


class TestBaggingClassifier:
    def test_registered(self):
        assert CLASSIFIER_REGISTRY["bagged_trees"] is BaggingClassifier

    def test_parameter_validation(self):
        with pytest.raises(MiningError):
            BaggingClassifier(n_estimators=0)
        with pytest.raises(MiningError):
            BaggingClassifier(sample_fraction=0.0)
        with pytest.raises(MiningError):
            BaggingClassifier(feature_fraction=1.5)

    def test_learns_separable_data(self, train_test):
        train, test = train_test
        model = BaggingClassifier(n_estimators=7, seed=1).fit(train)
        assert model.score(test) > 0.8
        assert len(model.estimators_) == 7

    def test_predict_before_fit_rejected(self, train_test):
        _, test = train_test
        with pytest.raises(MiningError):
            BaggingClassifier().predict(test)

    def test_predict_proba_normalised(self, train_test):
        train, test = train_test
        model = BaggingClassifier(n_estimators=5, seed=2).fit(train)
        for distribution in model.predict_proba(test.head(5)):
            assert sum(distribution.values()) == pytest.approx(1.0)
            assert set(distribution) == set(model.classes_)

    def test_reproducible_given_seed(self, train_test):
        train, test = train_test
        a = BaggingClassifier(n_estimators=5, seed=3).fit(train).predict(test)
        b = BaggingClassifier(n_estimators=5, seed=3).fit(train).predict(test)
        assert a == b

    def test_custom_base_learner(self, train_test):
        train, test = train_test
        model = BaggingClassifier(base_factory=NaiveBayesClassifier, n_estimators=5, seed=4).fit(train)
        assert model.score(test) > 0.8

    def test_describe_reports_committee_size(self, train_test):
        train, _ = train_test
        model = BaggingClassifier(n_estimators=3, seed=5).fit(train)
        description = model.describe()
        assert description["n_estimators"] == 3
        assert description["algorithm"] == "bagged_trees"

    def test_more_robust_to_label_noise_than_single_tree(self):
        dataset = make_classification_dataset(n_rows=220, n_numeric=3, n_categorical=1, seed=8)
        noisy = ClassNoiseInjector().apply(dataset, 0.25, seed=3)
        single = cross_validate(lambda: DecisionTreeClassifier(max_depth=8), noisy, k=3).accuracy
        bagged = cross_validate(lambda: BaggingClassifier(n_estimators=9, seed=0), noisy, k=3).accuracy
        assert bagged >= single - 0.03

    def test_tolerates_missing_values(self, train_test):
        train, test = train_test
        holed = MissingValuesInjector().apply(test, 0.3, seed=1)
        model = BaggingClassifier(n_estimators=5, seed=6).fit(train)
        assert len(model.predict(holed)) == holed.n_rows


class TestRandomSubspaceForest:
    def test_uses_feature_subspaces(self, train_test):
        train, test = train_test
        forest = RandomSubspaceForest(n_estimators=9, feature_fraction=0.5, seed=1).fit(train)
        assert forest.score(test) > 0.75
        total_features = len(train.feature_columns())
        assert all(len(features) < total_features for features in forest.estimator_features_)

    def test_full_fraction_keeps_all_features(self, train_test):
        train, _ = train_test
        model = BaggingClassifier(n_estimators=3, feature_fraction=1.0, seed=2).fit(train)
        total_features = len(train.feature_columns())
        assert all(len(features) == total_features for features in model.estimator_features_)
