"""Unit tests for the synthetic and civic dataset generators."""

from __future__ import annotations

import pytest

from repro.datasets import (
    CIVIC_GENERATORS,
    air_quality,
    census_income,
    civic_lod_graph,
    make_classification_dataset,
    make_clustered_dataset,
    make_regression_dataset,
    make_transactions_dataset,
    municipal_budget,
    service_requests,
)
from repro.datasets.civic import CIVIC
from repro.exceptions import SchemaError
from repro.lod.vocabulary import RDF
from repro.mining import NaiveBayesClassifier, cross_validate
from repro.quality import measure_quality
from repro.tabular.dataset import ColumnRole


class TestSyntheticGenerators:
    def test_classification_shape_and_roles(self):
        ds = make_classification_dataset(n_rows=100, n_numeric=3, n_categorical=2, n_classes=3, seed=1)
        assert ds.n_rows == 100
        assert len(ds.feature_columns()) == 5
        assert ds.target_column().name == "target"
        assert len(ds["target"].distinct()) == 3

    def test_classification_is_clean(self):
        ds = make_classification_dataset(n_rows=80, seed=2)
        profile = measure_quality(ds, criteria=("completeness", "duplication", "balance"))
        assert profile.score("completeness") == 1.0
        assert profile.score("duplication") == 1.0
        assert profile.score("balance") > 0.95

    def test_classification_is_learnable(self):
        ds = make_classification_dataset(n_rows=150, class_separation=2.5, seed=3)
        assert cross_validate(NaiveBayesClassifier, ds, k=3).accuracy > 0.85

    def test_classification_determinism(self):
        assert make_classification_dataset(seed=5) == make_classification_dataset(seed=5)

    def test_classification_validation(self):
        with pytest.raises(SchemaError):
            make_classification_dataset(n_rows=2, n_classes=4)
        with pytest.raises(SchemaError):
            make_classification_dataset(n_numeric=0, n_categorical=0)

    def test_regression_dataset(self):
        ds = make_regression_dataset(n_rows=100, seed=1)
        assert ds.target_column().is_numeric()
        with pytest.raises(SchemaError):
            make_regression_dataset(n_numeric=1)

    def test_clustered_dataset(self):
        ds = make_clustered_dataset(n_rows=90, n_clusters=3, seed=1)
        assert len(ds["cluster"].distinct()) == 3
        assert ds["cluster"].role == ColumnRole.METADATA

    def test_transactions_dataset_has_planted_pattern(self):
        ds = make_transactions_dataset(n_rows=300, seed=1)
        centre_library = ds.filter(lambda r: r["district"] == "centre" and r["service"] == "library")
        high_share = centre_library["satisfaction"].value_counts().get("high", 0) / centre_library.n_rows
        assert high_share > 0.7


class TestCivicGenerators:
    @pytest.mark.parametrize("name", sorted(CIVIC_GENERATORS))
    def test_clean_variants_have_target_and_identifier(self, name):
        ds = CIVIC_GENERATORS[name](n_rows=80, seed=1)
        assert ds.has_target()
        assert any(c.role == ColumnRole.IDENTIFIER for c in ds.columns)
        assert ds.n_rows == 80

    @pytest.mark.parametrize("name", sorted(CIVIC_GENERATORS))
    def test_clean_variants_are_learnable(self, name):
        ds = CIVIC_GENERATORS[name](n_rows=150, seed=2)
        result = cross_validate(NaiveBayesClassifier, ds, k=3)
        assert result.accuracy > 0.6, f"{name} should carry a learnable signal"

    @pytest.mark.parametrize("name", sorted(CIVIC_GENERATORS))
    def test_dirty_variants_have_lower_quality(self, name):
        clean = CIVIC_GENERATORS[name](n_rows=100, seed=3)
        dirty = CIVIC_GENERATORS[name](n_rows=100, seed=3, dirty=True)
        clean_profile = measure_quality(clean, criteria=("completeness", "duplication"))
        dirty_profile = measure_quality(dirty, criteria=("completeness", "duplication"))
        assert dirty_profile.score("completeness") < clean_profile.score("completeness")
        assert dirty_profile.score("duplication") < clean_profile.score("duplication")
        assert dirty.n_rows > clean.n_rows  # appended duplicates

    @pytest.mark.parametrize("name", sorted(CIVIC_GENERATORS))
    def test_determinism(self, name):
        assert CIVIC_GENERATORS[name](n_rows=60, seed=9) == CIVIC_GENERATORS[name](n_rows=60, seed=9)

    def test_census_income_column_is_metadata(self):
        ds = census_income(n_rows=60)
        assert ds["income"].role == ColumnRole.METADATA
        assert "income" not in ds.feature_names()


class TestCivicLOD:
    def test_graph_structure(self, air_quality_dataset):
        graph = civic_lod_graph(air_quality_dataset, entity_class="AirQualityReading")
        readings = graph.subjects_of_type(CIVIC.AirQualityReading)
        assert len(readings) == air_quality_dataset.n_rows
        # every reading carries its numeric measurements
        sample = readings[0]
        assert graph.value(sample, CIVIC["no2"]) is not None

    def test_graph_skips_missing_cells(self):
        dirty = air_quality(n_rows=60, seed=4, dirty=True)
        graph = civic_lod_graph(dirty, entity_class="AirQualityReading")
        # dirty data has missing cells and duplicated identifiers, so the graph
        # has at most one resource per distinct identifier and no triples for
        # the missing cells
        n_readings = len(graph.subjects_of_type(CIVIC.AirQualityReading))
        assert 0 < n_readings <= dirty.n_rows
        property_triples = sum(1 for _ in graph.triples(None, CIVIC["no2"], None))
        assert property_triples <= n_readings

    def test_default_entity_class_name(self, budget_dataset):
        graph = civic_lod_graph(budget_dataset)
        assert graph.subjects_of_type(CIVIC["MunicipalBudget"])
