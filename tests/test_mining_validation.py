"""Unit tests for train/test splitting, stratified k-fold and cross-validation."""

from __future__ import annotations

import pytest

from repro.datasets import make_classification_dataset
from repro.exceptions import MiningError
from repro.mining import DecisionTreeClassifier, NaiveBayesClassifier, cross_validate, stratified_kfold, train_test_split
from repro.mining.validation import EvaluationResult, holdout_evaluate
from repro.tabular.dataset import Dataset


class TestTrainTestSplit:
    def test_partition_sizes(self, clean_classification):
        train, test = train_test_split(clean_classification, test_fraction=0.25, seed=0)
        assert train.n_rows + test.n_rows == clean_classification.n_rows
        assert test.n_rows == pytest.approx(0.25 * clean_classification.n_rows, abs=3)

    def test_stratification_keeps_class_shares(self, clean_classification):
        _, test = train_test_split(clean_classification, test_fraction=0.3, seed=1, stratify=True)
        counts = test["target"].value_counts()
        shares = [count / test.n_rows for count in counts.values()]
        assert max(shares) - min(shares) < 0.25

    def test_reproducible(self, clean_classification):
        a = train_test_split(clean_classification, seed=5)[1]
        b = train_test_split(clean_classification, seed=5)[1]
        assert a.to_rows() == b.to_rows()

    def test_unstratified_split(self, clean_classification):
        train, test = train_test_split(clean_classification, stratify=False, seed=2)
        assert train.n_rows + test.n_rows == clean_classification.n_rows

    def test_invalid_fraction(self, clean_classification):
        with pytest.raises(MiningError):
            train_test_split(clean_classification, test_fraction=0.0)

    def test_too_small_dataset(self):
        tiny = Dataset.from_dict({"x": [1.0, 2.0], "target": ["a", "b"]}).set_target("target")
        with pytest.raises(MiningError):
            train_test_split(tiny)


class TestStratifiedKFold:
    def test_folds_partition_every_row(self, clean_classification):
        folds = stratified_kfold(clean_classification, k=4, seed=0)
        assert len(folds) == 4
        all_test_indices = sorted(i for _, test in folds for i in test)
        assert all_test_indices == list(range(clean_classification.n_rows))

    def test_train_and_test_disjoint(self, clean_classification):
        for train, test in stratified_kfold(clean_classification, k=3):
            assert not set(train) & set(test)

    def test_validation(self, clean_classification):
        with pytest.raises(MiningError):
            stratified_kfold(clean_classification, k=1)
        with pytest.raises(MiningError):
            stratified_kfold(clean_classification.head(3), k=10)


class TestCrossValidate:
    def test_result_fields(self, clean_classification):
        result = cross_validate(DecisionTreeClassifier, clean_classification, k=3)
        assert isinstance(result, EvaluationResult)
        assert result.algorithm == "decision_tree"
        assert 0.0 <= result.accuracy <= 1.0
        assert len(result.fold_accuracies) == 3
        assert result.accuracy_std >= 0.0
        assert set(result.as_dict()) >= {"algorithm", "accuracy", "macro_f1", "kappa"}

    def test_skips_rows_with_missing_target(self, clean_classification):
        from repro.tabular.dataset import Column

        values = clean_classification["target"].tolist()
        values[0] = None
        values[1] = None
        holed = clean_classification.replace_column(
            Column("target", values, ctype="categorical", role="target")
        )
        result = cross_validate(NaiveBayesClassifier, holed, k=3)
        assert result.accuracy > 0.5

    def test_too_few_rows_rejected(self):
        tiny = Dataset.from_dict({"x": [1.0, 2.0, 3.0], "target": ["a", "b", "a"]}).set_target("target")
        with pytest.raises(MiningError):
            cross_validate(DecisionTreeClassifier, tiny, k=10)

    def test_holdout_evaluate(self, clean_classification):
        train, test = train_test_split(clean_classification, seed=3)
        result = holdout_evaluate(NaiveBayesClassifier, train, test)
        assert result.algorithm == "naive_bayes"
        assert result.accuracy > 0.7
        assert len(result.fold_accuracies) == 1

    def test_single_split_std_is_zero(self, clean_classification):
        train, test = train_test_split(clean_classification, seed=3)
        result = holdout_evaluate(NaiveBayesClassifier, train, test)
        assert result.accuracy_std == 0.0
