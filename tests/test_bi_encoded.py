"""Row-vs-encoded equivalence harness for the OLAP/BI aggregation layer.

Every OLAP operation has two execution paths: the vectorized encoded-core
path (group keys from the cached int64 code arrays, measures reduced over
sorted-scan segments of the float views) and the retained row-at-a-time
reference, selected by the ``_force_row_olap`` escape hatch on :class:`Cube`
(and the ``force_row`` parameter of ``group_by``).  The two must be
**bit-identical**: same values (float bits included), same row order, same
column order and types.  The harness also pins the missing-value semantics of
every aggregation on both paths, the OLAP edge cases from the issue (empty
dice, single-group roll-up, all-missing measure, multi-level drill-down
ordering) and the no-mutation contract on the shared encoded views.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.bi import Cube, Dimension, KPI, Measure, cube_report, evaluate_kpis_by_level
from repro.exceptions import ReproError, SchemaError
from repro.tabular.dataset import ColumnType, Dataset
from repro.tabular.encoded import encode_dataset
from repro.tabular.transforms import group_by
import repro.tabular.transforms as transforms_module

AGGREGATIONS = ("sum", "mean", "min", "max", "count", "std", "median")


# ---------------------------------------------------------------------------
# Comparison helpers
# ---------------------------------------------------------------------------

def _bits(value):
    """A bit-exact comparison key: floats by their IEEE-754 bytes."""
    if isinstance(value, float):
        return ("float", struct.pack("<d", value))
    return (type(value).__name__, value)


def _assert_identical_datasets(a: Dataset, b: Dataset):
    """Exact equality: column names/order, ctypes, roles, row order, float bits."""
    assert a.column_names == b.column_names, f"column order {a.column_names} != {b.column_names}"
    assert a.n_rows == b.n_rows, f"row count {a.n_rows} != {b.n_rows}"
    for name in a.column_names:
        ca, cb = a[name], b[name]
        assert ca.ctype == cb.ctype, f"{name}: ctype {ca.ctype} != {cb.ctype}"
        assert ca.role == cb.role, f"{name}: role {ca.role} != {cb.role}"
        for i, (x, y) in enumerate(zip(ca.tolist(), cb.tolist())):
            assert _bits(x) == _bits(y), f"{name}[{i}]: {x!r} != {y!r}"


def _forced(cube: Cube) -> Cube:
    """A copy of ``cube`` routed to the row-at-a-time reference path."""
    clone = Cube(cube.dataset, cube.dimensions, cube.measures, name=cube.name)
    clone._force_row_olap = True
    return clone


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------

def _sales_dataset(n_rows: int = 240, seed: int = 5) -> Dataset:
    """A mixed-key sales table with missing cells in keys and measures."""
    rng = np.random.default_rng(seed)
    regions = ["north", "south", "east"]
    districts = ["d00", "d01", "d02", "d03", "d04", "d05", "d06"]
    rows = []
    for i in range(n_rows):
        region = regions[int(rng.integers(len(regions)))]
        district = districts[int(rng.integers(len(districts)))]
        rows.append(
            {
                "region": None if rng.random() < 0.08 else region,
                "district": None if rng.random() < 0.08 else district,
                "year": float(2019 + int(rng.integers(3))) if rng.random() > 0.05 else None,
                "flagged": bool(rng.random() < 0.4),
                "amount": None if rng.random() < 0.15 else float(np.round(rng.uniform(-50, 500), 3)),
                "rate": None if rng.random() < 0.1 else float(rng.uniform(0, 1)),
            }
        )
    return Dataset.from_rows(
        rows,
        name="sales",
        ctypes={
            "region": ColumnType.CATEGORICAL,
            "district": ColumnType.CATEGORICAL,
            "year": ColumnType.NUMERIC,
            "flagged": ColumnType.BOOLEAN,
            "amount": ColumnType.NUMERIC,
            "rate": ColumnType.NUMERIC,
        },
    )


def _sales_cube(dataset: Dataset) -> Cube:
    return Cube(
        dataset,
        dimensions=[
            Dimension("place", ("region", "district")),
            Dimension("year", ("year",)),
            Dimension("flagged", ("flagged",)),
        ],
        measures=[
            Measure("total", "amount", "sum"),
            Measure("mean_rate", "rate", "mean"),
            Measure("n", "amount", "count"),
        ],
    )


@pytest.fixture
def sales():
    return _sales_dataset()


@pytest.fixture
def cube(sales):
    return _sales_cube(sales)


# ---------------------------------------------------------------------------
# group_by equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("agg", AGGREGATIONS)
def test_group_by_every_aggregation_identical(sales, agg):
    aggs = {"out": ("amount", agg)}
    _assert_identical_datasets(
        group_by(sales, ["district"], aggs),
        group_by(sales, ["district"], aggs, force_row=True),
    )


@pytest.mark.parametrize(
    "keys",
    [["region"], ["district"], ["year"], ["flagged"], ["region", "district"],
     ["district", "year"], ["region", "district", "year", "flagged"]],
)
def test_group_by_key_combinations_identical(sales, keys):
    aggs = {f"amount_{agg}": ("amount", agg) for agg in AGGREGATIONS}
    aggs["rate_mean"] = ("rate", "mean")
    _assert_identical_datasets(
        group_by(sales, keys, aggs),
        group_by(sales, keys, aggs, force_row=True),
    )


def test_group_by_missing_sentinel_collision_identical():
    # A raw cell that is literally the row path's missing sentinel must share
    # a group with the genuinely missing cells on both paths.
    ds = Dataset.from_dict(
        {"k": ["a", None, "\0<missing>", "a", None], "x": [1.0, 2.0, 3.0, 4.0, 5.0]},
        ctypes={"k": ColumnType.CATEGORICAL, "x": ColumnType.NUMERIC},
    )
    fast = group_by(ds, ["k"], {"s": ("x", "sum")})
    slow = group_by(ds, ["k"], {"s": ("x", "sum")}, force_row=True)
    _assert_identical_datasets(fast, slow)
    assert fast.n_rows == 2  # {"a"} and {missing, literal sentinel}
    assert fast["s"].tolist() == [1.0 + 4.0, 2.0 + 3.0 + 5.0]


def test_group_by_numeric_key_nan_group_identical():
    ds = Dataset.from_dict(
        {"k": [1.0, None, 2.0, 1.0, None], "x": [10.0, 20.0, 30.0, 40.0, 50.0]}
    )
    fast = group_by(ds, ["k"], {"s": ("x", "sum")})
    slow = group_by(ds, ["k"], {"s": ("x", "sum")}, force_row=True)
    _assert_identical_datasets(fast, slow)
    assert fast.n_rows == 3  # 1.0, the nan group, 2.0 — in first-seen order
    assert fast["s"].tolist() == [50.0, 70.0, 30.0]


def test_group_by_float_summation_order_is_sequential(sales):
    # The per-group sum must replay Python's left-to-right summation, not a
    # pairwise reduction: compare against an explicit sequential loop.
    grouped = group_by(sales, ["district"], {"s": ("amount", "sum")})
    by_key = {}
    for row in sales.iter_rows():
        key = "\0<missing>" if row["district"] is None else row["district"]
        amount = row["amount"]
        if amount is not None and not (isinstance(amount, float) and np.isnan(amount)):
            by_key.setdefault(key, []).append(float(amount))
    for row in grouped.iter_rows():
        key = "\0<missing>" if row["district"] is None else row["district"]
        expected = 0.0
        for value in by_key.get(key, []):
            expected = expected + value
        if by_key.get(key):
            assert struct.pack("<d", row["s"]) == struct.pack("<d", expected)


def test_group_by_non_numeric_measure_falls_back_to_reference(monkeypatch):
    calls = {"encoded": 0, "reference": 0}
    real_encoded = transforms_module._grouped_rows_encoded
    real_reference = transforms_module._grouped_rows_reference
    monkeypatch.setattr(
        transforms_module,
        "_grouped_rows_encoded",
        lambda *a, **k: calls.__setitem__("encoded", calls["encoded"] + 1) or real_encoded(*a, **k),
    )
    monkeypatch.setattr(
        transforms_module,
        "_grouped_rows_reference",
        lambda *a, **k: calls.__setitem__("reference", calls["reference"] + 1)
        or real_reference(*a, **k),
    )
    # A categorical column holding float-parseable strings: only the
    # row-at-a-time reference defines aggregation over it.
    ds = Dataset.from_dict(
        {"g": ["a", "b", "a"], "x": [1.0, 2.0, 3.0], "code": ["10", "20", "30"]},
        ctypes={"g": ColumnType.CATEGORICAL, "code": ColumnType.CATEGORICAL},
    )
    group_by(ds, ["g"], {"m": ("x", "mean")})
    assert calls == {"encoded": 1, "reference": 0}
    group_by(ds, ["g"], {"m": ("code", "sum")})
    assert calls == {"encoded": 1, "reference": 1}
    group_by(ds, ["g"], {"m": ("x", "mean")}, force_row=True)
    assert calls == {"encoded": 1, "reference": 2}


# ---------------------------------------------------------------------------
# Cube operation equivalence
# ---------------------------------------------------------------------------

def test_cube_aggregate_and_grand_total_identical(cube):
    forced = _forced(cube)
    _assert_identical_datasets(cube.aggregate(["district"]), forced.aggregate(["district"]))
    _assert_identical_datasets(
        cube.aggregate(["region", "year"]), forced.aggregate(["region", "year"])
    )
    _assert_identical_datasets(cube.aggregate(), forced.aggregate())


def test_cube_rollup_and_drill_down_identical(cube):
    forced = _forced(cube)
    _assert_identical_datasets(cube.rollup("place"), forced.rollup("place"))
    _assert_identical_datasets(cube.drill_down("place"), forced.drill_down("place"))
    _assert_identical_datasets(cube.rollup("year"), forced.rollup("year"))


def test_cube_pivot_identical(cube):
    forced = _forced(cube)
    _assert_identical_datasets(cube.pivot("district", "year"), forced.pivot("district", "year"))
    _assert_identical_datasets(
        cube.pivot("region", "flagged", measure_name="mean_rate"),
        forced.pivot("region", "flagged", measure_name="mean_rate"),
    )


def test_cube_slice_identical(cube):
    forced = _forced(cube)
    for level, value in (("district", "d03"), ("year", 2020.0), ("flagged", True)):
        fast = cube.slice(level, value)
        slow = forced.slice(level, value)
        _assert_identical_datasets(fast.dataset, slow.dataset)
        _assert_identical_datasets(fast.aggregate(["region"]), slow.aggregate(["region"]))
    # A sub-cube of an encoded cube stays on the encoded path; of a forced
    # cube, on the row path.
    assert cube.slice("flagged", True)._force_row_olap is False
    assert forced.slice("flagged", True)._force_row_olap is True


def test_cube_slice_exotic_numeric_candidates_match_row_semantics(cube):
    # Decimal/Fraction compare equal to float cells through Python ==; the
    # encoded mask must keep exactly the rows the row path keeps.
    from decimal import Decimal
    from fractions import Fraction

    forced = _forced(cube)
    for value in (Decimal("2020"), Fraction(2021, 1)):
        fast = cube.slice("year", value)
        slow = forced.slice("year", value)
        _assert_identical_datasets(fast.dataset, slow.dataset)
    diced = cube.dice({"year": [Decimal("2019"), 2021.0]})
    _assert_identical_datasets(
        diced.dataset, forced.dice({"year": [Decimal("2019"), 2021.0]}).dataset
    )


def test_cube_slice_type_mismatch_matches_row_semantics(cube):
    # Categorical cells are strings: slicing with a non-string value matches
    # nothing on the row path (str == int is False) and must do the same on
    # the encoded path — both raise because every row is filtered out.
    with pytest.raises(SchemaError):
        _forced(cube).slice("district", 3)
    with pytest.raises(SchemaError):
        cube.slice("district", 3)


def test_cube_dice_identical(cube):
    forced = _forced(cube)
    selections = {"district": ["d01", "d02", "d05"], "flagged": [True], "year": [2019.0, 2021.0]}
    fast = cube.dice(selections)
    slow = forced.dice(selections)
    _assert_identical_datasets(fast.dataset, slow.dataset)
    _assert_identical_datasets(fast.aggregate(["district"]), slow.aggregate(["district"]))


def test_cube_empty_dice_selections_identical(cube):
    # dice({}) keeps every row but must still return a *fresh* sub-cube with
    # the row path's name, on both paths.
    fast = cube.dice({})
    slow = _forced(cube).dice({})
    assert fast is not cube and slow.name == fast.name == f"{cube.name}_dice"
    _assert_identical_datasets(fast.dataset, slow.dataset)


def test_cube_measure_summary_identical(cube):
    assert cube.measure_summary() == _forced(cube).measure_summary()


# ---------------------------------------------------------------------------
# Missing-value semantics (pinned on both paths)
# ---------------------------------------------------------------------------

def test_aggregation_missing_semantics_pinned():
    # Group "a": values 1.0, missing, 3.0 → count ignores the missing cell,
    # mean divides by the 2 present values.  Group "b": all missing → count 0,
    # every other aggregation nan.
    ds = Dataset.from_dict(
        {
            "g": ["a", "a", "a", "b", "b"],
            "x": [1.0, None, 3.0, None, float("nan")],
        },
        ctypes={"g": ColumnType.CATEGORICAL, "x": ColumnType.NUMERIC},
    )
    aggs = {f"x_{agg}": ("x", agg) for agg in AGGREGATIONS}
    for force in (False, True):
        grouped = group_by(ds, ["g"], aggs, force_row=force)
        by_group = {row["g"]: row for row in grouped.iter_rows()}
        a, b = by_group["a"], by_group["b"]
        assert a["x_count"] == 2.0 and a["x_sum"] == 4.0 and a["x_mean"] == 2.0
        assert a["x_min"] == 1.0 and a["x_max"] == 3.0
        assert b["x_count"] == 0.0
        for agg in ("sum", "mean", "min", "max", "std", "median"):
            assert np.isnan(b[f"x_{agg}"]), f"b.{agg} should be nan on force_row={force}"
    _assert_identical_datasets(
        group_by(ds, ["g"], aggs), group_by(ds, ["g"], aggs, force_row=True)
    )


def test_cube_count_and_mean_ignore_missing(cube, sales):
    grouped = cube.aggregate(["district"])
    total_count = sum(grouped["n"].tolist())
    present = [v for v in sales["amount"].tolist() if v is not None and not np.isnan(v)]
    assert total_count == float(len(present))


# ---------------------------------------------------------------------------
# OLAP edge cases (both paths)
# ---------------------------------------------------------------------------

def test_empty_dice_raises_on_both_paths(cube):
    selections = {"district": ["no-such-district"]}
    with pytest.raises(SchemaError):
        cube.dice(selections)
    with pytest.raises(SchemaError):
        _forced(cube).dice(selections)


def test_single_group_rollup_both_paths():
    ds = Dataset.from_dict(
        {"g": ["only"] * 6, "x": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]},
        ctypes={"g": ColumnType.CATEGORICAL},
    )
    cube = Cube(ds, [Dimension("g", ("g",))], [Measure("s", "x", "sum")])
    fast = cube.rollup("g")
    slow = _forced(cube).rollup("g")
    _assert_identical_datasets(fast, slow)
    assert fast.n_rows == 1 and fast["s"][0] == 21.0


def test_all_missing_measure_column_both_paths():
    ds = Dataset.from_dict(
        {"g": ["a", "b", "a"], "x": [None, None, None]},
        ctypes={"g": ColumnType.CATEGORICAL, "x": ColumnType.NUMERIC},
    )
    cube = Cube(
        ds,
        [Dimension("g", ("g",))],
        [Measure("s", "x", "sum"), Measure("n", "x", "count"), Measure("m", "x", "mean")],
    )
    fast = cube.aggregate(["g"])
    slow = _forced(cube).aggregate(["g"])
    _assert_identical_datasets(fast, slow)
    assert fast["n"].tolist() == [0.0, 0.0]
    assert all(np.isnan(v) for v in fast["s"].tolist() + fast["m"].tolist())


def test_multi_level_drill_down_ordering(cube, sales):
    # Drilling the place dimension to its finest level must list the groups in
    # first-seen row order of the district column — the row path's dict order.
    drilled = cube.drill_down("place")
    expected, seen = [], set()
    for value in sales["district"].tolist():
        key = "\0<missing>" if value is None else value
        if key not in seen:
            seen.add(key)
            expected.append(None if key == "\0<missing>" else value)
    assert drilled["district"].tolist() == expected
    _assert_identical_datasets(drilled, _forced(cube).drill_down("place"))


def test_cube_operations_do_not_mutate_shared_views(cube):
    encoded = encode_dataset(cube.dataset)
    snapshot = {}
    for name in cube.dataset.column_names:
        values, missing = encoded.numeric_view(name)
        codes, vocabulary, _ = encoded.codes_view(name)
        snapshot[name] = (values.copy(), missing.copy(), codes.copy(), list(vocabulary))
    cube.aggregate(["district"])
    cube.aggregate()
    cube.pivot("district", "year")
    cube.slice("flagged", True).aggregate(["region"])
    cube.dice({"district": ["d01", "d02"]}).aggregate(["year"])
    evaluate_kpis_by_level([KPI("rate", "rate", target=0.5)], cube, "district")
    for name, (values, missing, codes, vocabulary) in snapshot.items():
        new_values, new_missing = encoded.numeric_view(name)
        new_codes, new_vocabulary, _ = encoded.codes_view(name)
        assert np.array_equal(values, new_values, equal_nan=True), f"{name}: numeric view mutated"
        assert np.array_equal(missing, new_missing), f"{name}: missing mask mutated"
        assert np.array_equal(codes, new_codes), f"{name}: codes mutated"
        assert vocabulary == new_vocabulary, f"{name}: vocabulary mutated"


# ---------------------------------------------------------------------------
# KPI / reporting consumers
# ---------------------------------------------------------------------------

def test_evaluate_kpis_by_level_identical(cube):
    kpis = [
        KPI("mean_rate", "rate", target=0.5),
        KPI("mean_amount", "amount", target=100.0, higher_is_better=False, tolerance=0.2),
    ]
    fast = evaluate_kpis_by_level(kpis, cube, "district")
    slow = evaluate_kpis_by_level(kpis, _forced(cube), "district")
    _assert_identical_datasets(fast, slow)
    assert fast.column_names == [
        "district", "mean_rate", "mean_rate_status", "mean_amount", "mean_amount_status",
    ]
    assert set(fast["mean_rate_status"].distinct()) <= {"good", "warning", "bad"}


def test_evaluate_kpis_by_level_validation(cube):
    with pytest.raises(ReproError):
        evaluate_kpis_by_level([], cube, "district")
    with pytest.raises(ReproError):
        evaluate_kpis_by_level([KPI("f", lambda ds: 1.0, target=1.0)], cube, "district")
    with pytest.raises(ReproError):
        evaluate_kpis_by_level([KPI("g", "ghost", target=1.0)], cube, "district")
    with pytest.raises(ReproError):
        evaluate_kpis_by_level([KPI("c", "region", target=1.0)], cube, "district")
    # Name collisions would silently overwrite scoreboard columns: reject them.
    with pytest.raises(ReproError):
        evaluate_kpis_by_level([KPI("district", "rate", target=1.0)], cube, "district")
    with pytest.raises(ReproError):
        evaluate_kpis_by_level(
            [KPI("r", "rate", target=1.0), KPI("r", "amount", target=1.0)], cube, "district"
        )


def test_cube_report_identical_rendering(cube):
    fast = cube_report(cube, levels=["district", "year"])
    slow = cube_report(_forced(cube), levels=["district", "year"])
    for fmt in ("text", "markdown", "html"):
        assert fast.render(fmt) == slow.render(fmt)
    text = fast.render("text")
    assert "Grand totals" in text and "By district" in text and "By year" in text


def test_cube_report_defaults_to_finest_levels(cube):
    report = cube_report(cube)
    titles = [section.title for section in report.sections]
    assert titles == ["Grand totals", "By district", "By year", "By flagged"]


# ---------------------------------------------------------------------------
# Encoding reuse
# ---------------------------------------------------------------------------

def test_sliced_cube_reuses_parent_encoding(cube):
    sliced = cube.slice("flagged", True)
    encoded = getattr(sliced.dataset, "_encoded_cache", None)
    assert encoded is not None, "slice should pre-wire the sub-cube's encoding"
    assert encoded._parent is encode_dataset(cube.dataset)


def test_take_slices_group_codes_consistently(sales):
    # Group codes computed on a fold view must induce the same grouping as
    # encoding the fold from scratch.
    encoded = encode_dataset(sales)
    indices = np.arange(0, sales.n_rows, 2)
    fold = encoded.take(indices)
    fold_encoded = getattr(fold, "_encoded_cache")
    fresh = encode_dataset(fold.copy())
    for keys in (["district"], ["region", "year"]):
        a_ids, a_n = fold_encoded.group_keys(keys)
        b_ids, b_n = fresh.group_keys(keys)
        assert a_n == b_n
        assert np.array_equal(a_ids, b_ids)
