"""Unit tests for repro.tabular.schema (ColumnSpec, Schema, infer_schema)."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.tabular.dataset import Column, ColumnType, Dataset
from repro.tabular.schema import ColumnSpec, Schema, infer_schema


@pytest.fixture
def dataset():
    return Dataset(
        [
            Column("amount", [5.0, 15.0, 25.0, None]),
            Column("district", ["north", "south", "north", "east"], ctype=ColumnType.CATEGORICAL),
            Column("code", ["A1", "A2", "A3", "A1"], ctype=ColumnType.STRING),
        ],
        name="rows",
    )


class TestColumnSpec:
    def test_type_mismatch_is_violation(self, dataset):
        spec = ColumnSpec("district", ctype=ColumnType.NUMERIC)
        violations = spec.validate_column(dataset["district"])
        assert any(v.kind == "type" for v in violations)

    def test_nullability(self, dataset):
        spec = ColumnSpec("amount", nullable=False)
        violations = spec.validate_column(dataset["amount"])
        assert any(v.kind == "nullability" for v in violations)

    def test_range_violations(self, dataset):
        spec = ColumnSpec("amount", min_value=10.0, max_value=20.0)
        violations = spec.validate_column(dataset["amount"])
        kinds = [v.kind for v in violations]
        assert kinds.count("range") == 2  # 5.0 below, 25.0 above

    def test_domain_violation(self, dataset):
        spec = ColumnSpec("district", allowed_values=("north", "south"))
        violations = spec.validate_column(dataset["district"])
        assert any("east" in v.message for v in violations)

    def test_uniqueness(self, dataset):
        spec = ColumnSpec("code", unique=True)
        violations = spec.validate_column(dataset["code"])
        assert any(v.kind == "uniqueness" for v in violations)

    def test_unknown_ctype_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("x", ctype="alien")


class TestSchema:
    def test_required_column_missing(self, dataset):
        schema = Schema("s").add_spec(ColumnSpec("ghost"))
        violations = schema.validate(dataset)
        assert any(v.kind == "presence" for v in violations)

    def test_optional_column_missing_is_fine(self, dataset):
        schema = Schema("s").add_spec(ColumnSpec("ghost", required=False))
        assert schema.is_valid(dataset)

    def test_duplicate_spec_rejected(self):
        schema = Schema("s").add_spec(ColumnSpec("a"))
        with pytest.raises(SchemaError):
            schema.add_spec(ColumnSpec("a"))

    def test_row_rules(self, dataset):
        schema = Schema("s").add_row_rule("amount positive", lambda row: row["amount"] is None or row["amount"] > 10)
        violations = schema.validate(dataset)
        assert any(v.kind == "rule" for v in violations)

    def test_row_rule_exception_counts_as_violation(self, dataset):
        schema = Schema("s").add_row_rule("boom", lambda row: row["missing_key"] > 0)
        violations = schema.validate(dataset)
        assert all(v.kind == "rule-error" for v in violations)
        assert len(violations) == dataset.n_rows

    def test_spec_for_lookup(self):
        schema = Schema("s").add_spec(ColumnSpec("a"))
        assert schema.spec_for("a") is not None
        assert schema.spec_for("b") is None


class TestInferSchema:
    def test_inferred_schema_accepts_the_source(self, dataset):
        schema = infer_schema(dataset)
        assert schema.is_valid(dataset)

    def test_inferred_bounds_catch_new_out_of_range_values(self, dataset):
        schema = infer_schema(dataset)
        corrupted = dataset.replace_column(Column("amount", [5.0, 15.0, 9999.0, None]))
        violations = schema.validate(corrupted)
        assert any(v.kind == "range" for v in violations)

    def test_inferred_domains_catch_new_levels(self, dataset):
        schema = infer_schema(dataset)
        corrupted = dataset.replace_column(
            Column("district", ["north", "south", "MARS", "east"], ctype=ColumnType.CATEGORICAL)
        )
        violations = schema.validate(corrupted)
        assert any(v.kind == "domain" for v in violations)

    def test_inferred_nullability(self, dataset):
        schema = infer_schema(dataset)
        # amount had missing values -> nullable; district had none -> not nullable
        assert schema.spec_for("amount").nullable
        assert not schema.spec_for("district").nullable

    def test_categorical_domains_can_be_disabled(self, dataset):
        schema = infer_schema(dataset, categorical_domains=False)
        assert schema.spec_for("district").allowed_values is None
