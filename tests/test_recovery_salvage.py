"""Unit tests for the recovery tier: salvage readers, provenance, corruptors."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ExperimentError, SchemaError
from repro.lod.serialization import parse_ntriples, to_ntriples
from repro.quality import CompletenessCriterion, SalvageCriterion, measure_quality
from repro.quality.profile import DEFAULT_CRITERIA
from repro.recovery import (
    CORRUPTOR_REGISTRY,
    PROVENANCE_CODES,
    PROVENANCE_NAMES,
    apply_corruptions,
    attach_provenance,
    dataset_provenance,
    get_corruptor,
    provenance_counts,
    salvage_csv,
    salvage_csv_text,
    salvage_ntriples,
)
from repro.tabular.io_csv import read_csv_text, write_csv_text

CLEAN_CSV = (
    "city,population,score\n"
    "Alicante,330000,0.91\n"
    "Matanzas,145000,0.72\n"
    "Elx,230000,0.65\n"
)

CLEAN_NT = (
    '<http://ex/a> <http://ex/p> "v" .\n'
    '<http://ex/a> <http://ex/q> "2"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
    '<http://ex/b> <http://ex/p> <http://ex/a> .\n'
)


class TestCleanEquivalence:
    def test_clean_text_bit_identical(self):
        dataset, report = salvage_csv_text(CLEAN_CSV)
        assert dataset == read_csv_text(CLEAN_CSV)
        assert report.is_clean
        assert report.cell_recovery_rate == 1.0
        assert dataset_provenance(dataset) is None

    def test_clean_bytes_bit_identical(self):
        dataset, report = salvage_csv(CLEAN_CSV.encode())
        assert dataset == read_csv_text(CLEAN_CSV)
        assert report.is_clean and report.encoding == "utf-8"

    def test_clean_file_bit_identical(self, tmp_path):
        path = tmp_path / "clean.csv"
        path.write_text(CLEAN_CSV, encoding="utf-8")
        dataset, report = salvage_csv(path)
        assert dataset == read_csv_text(CLEAN_CSV)
        assert report.is_clean

    def test_force_strict_hatch(self):
        dataset, report = salvage_csv_text(CLEAN_CSV, _force_strict=True)
        assert dataset == read_csv_text(CLEAN_CSV)
        assert report.is_clean
        with pytest.raises(SchemaError):
            salvage_csv_text("a,b\n1,2,3\n", _force_strict=True)

    def test_clean_quality_profile_identical(self):
        strict_profile = measure_quality(read_csv_text(CLEAN_CSV))
        salvaged_profile = measure_quality(salvage_csv_text(CLEAN_CSV).dataset)
        assert strict_profile.to_json_dict() == salvaged_profile.to_json_dict()

    def test_crlf_round_trip_identical(self):
        # write_csv_text emits \r\n terminators; both tiers must agree on it.
        text = write_csv_text(read_csv_text(CLEAN_CSV))
        dataset, report = salvage_csv_text(text)
        assert dataset == read_csv_text(text)
        assert report.is_clean

    def test_empty_and_header_only_raise_like_strict(self):
        with pytest.raises(SchemaError):
            salvage_csv_text("   ")
        with pytest.raises(SchemaError):
            salvage_csv_text("a,b\n")


class TestCsvRepairs:
    def test_long_row_truncated_and_flagged(self):
        dataset, report = salvage_csv_text("a,b\nx,1,SPILL\ny,2\n")
        assert dataset.n_rows == 2
        assert list(dataset["a"].values) == ["x", "y"]
        assert report.flag_counts == {"TRUNCATED": 1}
        assert any(e["action"] == "row_truncated" for e in report.events)

    def test_short_row_padded_and_flagged(self):
        dataset, report = salvage_csv_text("a,b,c\nx,1,2\ny\n")
        assert dataset.n_rows == 2
        assert report.flag_counts == {"PADDED": 2}
        provenance = dataset_provenance(dataset)
        assert provenance is not None
        assert int(provenance["b"][1]) == PROVENANCE_CODES["PADDED"]

    def test_unbalanced_quote_healed(self):
        dataset, report = salvage_csv_text('a,b\n"x,1\ny,2\n')
        assert dataset.n_rows == 2
        assert list(dataset["a"].values) == ["x", "y"]
        assert "QUOTE_REPAIRED" in report.flag_counts
        assert any(e["action"] == "unbalanced_quote_healed" for e in report.events)

    def test_embedded_newline_rejoined(self):
        dataset, report = salvage_csv_text("a,b\nAli\ncante,1\nElx,2\n")
        assert dataset.n_rows == 2
        assert list(dataset["a"].values) == ["Alicante", "Elx"]
        assert report.flag_counts == {"REJOINED": 1}

    def test_duplicate_and_empty_header_disambiguated(self):
        dataset, report = salvage_csv_text("a,,a\n1,2,3\n")
        assert dataset.column_names == ["a", "column_2", "a__2"]
        assert sum(1 for e in report.events if e["action"] == "header_repaired") == 2

    def test_coercion_failure_becomes_missing(self):
        dataset, report = salvage_csv_text(
            "a,b\nx,1\ny,oops\n", ctypes={"b": "numeric"}
        )
        assert np.isnan(dataset["b"].values[1])
        assert report.flag_counts == {"COERCED_MISSING": 1}

    def test_latin1_fallback_decodes_accents(self):
        data = "name,val\ncafé,1\n".encode("latin-1")
        dataset, report = salvage_csv(data)
        assert dataset["name"].values[0] == "café"
        assert report.encoding == "latin-1"
        assert not report.is_clean

    def test_lossy_decode_flags_replaced_cells(self):
        # 0x80 is both invalid UTF-8 and a C1 control as latin-1, forcing the
        # lossy replacement decode.
        data = b"name,val\nbad\x80cell,1\nfine,2\n"
        dataset, report = salvage_csv(data)
        assert report.encoding == "utf-8+replace"
        assert report.n_replaced_characters == 1
        assert report.flag_counts.get("ENCODING_REPLACED") == 1
        assert "�" in dataset["name"].values[0]

    def test_legitimate_replacement_char_not_flagged(self):
        dataset, report = salvage_csv_text("a,b\n�,1\nx,2\n")
        assert report.is_clean
        assert dataset == read_csv_text("a,b\n�,1\nx,2\n")

    def test_stray_carriage_return_recovered(self):
        dataset, report = salvage_csv_text("a,b\nx\r,1\ny,2\n")
        assert dataset.n_rows == 2
        assert any(e["action"] == "reader_error_recovered" for e in report.events)

    def test_report_json_round_trips(self):
        _, report = salvage_csv_text("a,b\nx,1,SPILL\n")
        decoded = json.loads(json.dumps(report.to_json_dict()))
        assert decoded["flag_counts"] == {"TRUNCATED": 1}
        assert decoded["is_clean"] is False
        assert "TRUNCATED" in report.summary()


class TestNtSalvage:
    def test_clean_graph_identical(self):
        strict = parse_ntriples(CLEAN_NT)
        graph, report = salvage_ntriples(CLEAN_NT)
        assert to_ntriples(graph) == to_ntriples(strict)
        assert report.is_clean and report.n_triples == 3

    def test_missing_dot_repaired(self):
        graph, report = salvage_ntriples('<http://ex/a> <http://ex/p> "v"\n')
        assert len(graph) == 1
        assert report.n_repaired == 1
        assert report.events[0]["action"] == "repaired_missing_dot"

    def test_trailing_garbage_repaired(self):
        graph, report = salvage_ntriples('<http://ex/a> <http://ex/p> "v" . ###junk\n')
        assert len(graph) == 1
        assert report.events[0]["action"] == "repaired_trailing_garbage"

    def test_unparseable_line_skipped_with_diagnostics(self):
        source = CLEAN_NT + "complete garbage\n"
        graph, report = salvage_ntriples(source)
        assert len(graph) == 3
        assert report.n_skipped == 1
        assert report.events[0]["line"] == 4
        assert "complete garbage" in report.events[0]["detail"]
        assert report.line_recovery_rate == pytest.approx(3 / 4)

    def test_force_strict_hatch(self):
        graph, report = salvage_ntriples(CLEAN_NT, _force_strict=True)
        assert to_ntriples(graph) == to_ntriples(parse_ntriples(CLEAN_NT))
        from repro.exceptions import LODError

        with pytest.raises(LODError):
            salvage_ntriples("garbage\n", _force_strict=True)

    def test_path_source(self, tmp_path):
        path = tmp_path / "data.nt"
        path.write_text(CLEAN_NT, encoding="utf-8")
        graph, report = salvage_ntriples(path)
        assert len(graph) == 3 and report.is_clean


class TestCorruptors:
    @pytest.mark.parametrize("name", sorted(CORRUPTOR_REGISTRY))
    def test_severity_zero_is_identity(self, name):
        payload = CLEAN_CSV.encode() if not name.startswith("nt_") else CLEAN_NT.encode()
        assert get_corruptor(name).apply(payload, 0.0, seed=1) == payload

    @pytest.mark.parametrize("name", sorted(CORRUPTOR_REGISTRY))
    def test_seeded_determinism(self, name):
        payload = CLEAN_CSV.encode() if not name.startswith("nt_") else CLEAN_NT.encode()
        first = get_corruptor(name).apply(payload, 0.8, seed=3)
        second = get_corruptor(name).apply(payload, 0.8, seed=3)
        assert first == second

    def test_severity_validated(self):
        with pytest.raises(ExperimentError):
            get_corruptor("ragged_rows").apply(b"a,b\n1,2\n", 1.5)

    def test_unknown_corruptor_rejected(self):
        with pytest.raises(ExperimentError):
            get_corruptor("nope")
        with pytest.raises(ExperimentError):
            apply_corruptions(b"x", {"nope": 0.5})

    def test_apply_corruptions_registry_order(self):
        payload = CLEAN_CSV.encode()
        spec = {"encoding": 0.5, "ragged_rows": 0.5}
        # dict order at the call site must not matter
        assert apply_corruptions(payload, spec, seed=1) == apply_corruptions(
            payload, dict(reversed(list(spec.items()))), seed=1
        )


class TestRoundTripProperty:
    """Seeded corrupt → salvage → profile sweeps: salvage must never raise."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("severity", [0.1, 0.4, 0.8])
    def test_csv_sweep_never_raises(self, seed, severity):
        base = "id,name,val\n" + "".join(
            f"{i},item_{i},{i * 0.5}\n" for i in range(40)
        )
        corrupted = apply_corruptions(
            base.encode(),
            {
                "ragged_rows": severity,
                "quotes": severity,
                "newlines": severity,
                "encoding": severity,
                "truncated_file": severity * 0.2,
            },
            seed=seed,
        )
        dataset, report = salvage_csv(corrupted)
        assert dataset.n_rows >= 1
        profile = measure_quality(dataset)
        assert set(profile.as_dict()) == set(DEFAULT_CRITERIA)
        # the report's aggregate counts always match the attached provenance
        provenance = dataset_provenance(dataset)
        if provenance is not None:
            assert provenance_counts(provenance) == report.flag_counts
            assert all(len(flags) == dataset.n_rows for flags in provenance.values())

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("severity", [0.2, 0.6, 1.0])
    def test_nt_sweep_never_raises(self, seed, severity):
        corrupted = apply_corruptions(
            (CLEAN_NT * 10).encode(),
            {"nt_dots": severity, "nt_garbage": severity * 0.5},
            seed=seed,
        )
        graph, report = salvage_ntriples(corrupted.decode("utf-8", errors="replace"))
        assert report.n_triples + report.n_skipped > 0
        assert 0.0 <= report.line_recovery_rate <= 1.0

    def test_severity_zero_sweep_is_clean(self):
        corrupted = apply_corruptions(
            CLEAN_CSV.encode(), {name: 0.0 for name in CORRUPTOR_REGISTRY}, seed=0
        )
        assert corrupted == CLEAN_CSV.encode()
        dataset, report = salvage_csv(corrupted)
        assert report.is_clean and dataset == read_csv_text(CLEAN_CSV)


class TestQualityIntegration:
    def test_salvage_criterion_without_provenance(self):
        measure = SalvageCriterion().measure(read_csv_text(CLEAN_CSV))
        assert measure.score == 1.0
        assert measure.details["has_provenance"] is False

    def test_salvage_criterion_scores_flagged_fraction(self):
        dataset, _ = salvage_csv_text("a,b\nx,1,SPILL\ny\n")
        measure = SalvageCriterion().measure(dataset)
        assert measure.details["has_provenance"] is True
        assert measure.details["flag_counts"] == {"PADDED": 1, "TRUNCATED": 1}
        assert measure.score == pytest.approx(1.0 - 2 / 4)

    def test_salvage_criterion_not_in_default_profile(self):
        assert "salvage" not in DEFAULT_CRITERIA
        profile = measure_quality(read_csv_text(CLEAN_CSV))
        assert "salvage" not in profile.as_dict()

    def test_salvage_criterion_in_explicit_profile(self):
        dataset, _ = salvage_csv_text("a,b\nx,1,SPILL\ny\n")
        profile = measure_quality(dataset, criteria=[*DEFAULT_CRITERIA, "salvage"])
        assert profile.score("salvage") == pytest.approx(0.5)

    def test_completeness_surfaces_salvage_counts(self):
        dataset, _ = salvage_csv_text("a,b\nx,1,SPILL\ny\n")
        measure = CompletenessCriterion().measure(dataset)
        assert measure.details["salvage"] == {"PADDED": 1, "TRUNCATED": 1}

    def test_completeness_has_no_salvage_detail_on_strict_datasets(self):
        measure = CompletenessCriterion().measure(read_csv_text(CLEAN_CSV))
        assert "salvage" not in measure.details

    def test_completeness_encoded_row_parity_with_provenance(self):
        from repro.tabular.encoded import encode_dataset

        dataset, _ = salvage_csv_text("a,b\nx,1,SPILL\ny\n")
        encoded = encode_dataset(dataset)
        row = CompletenessCriterion()
        row._force_row_measure = True
        assert CompletenessCriterion().measure_encoded(encoded) == row.measure_encoded(encoded)


class TestProvenanceHelpers:
    def test_codes_and_names_are_inverse(self):
        assert PROVENANCE_CODES == {name: code for code, name in PROVENANCE_NAMES.items()}

    def test_counts_respect_column_selection(self):
        provenance = {
            "a": np.array([0, 1, 2], dtype=np.int8),
            "b": np.array([0, 0, 4], dtype=np.int8),
        }
        assert provenance_counts(provenance) == {
            "PADDED": 1,
            "TRUNCATED": 1,
            "COERCED_MISSING": 1,
        }
        assert provenance_counts(provenance, columns=["b"]) == {"COERCED_MISSING": 1}
        assert provenance_counts(provenance, columns=["missing"]) == {}

    def test_attach_is_per_instance(self):
        dataset = read_csv_text(CLEAN_CSV)
        flags = {name: np.zeros(dataset.n_rows, dtype=np.int8) for name in dataset.column_names}
        attach_provenance(dataset, flags)
        assert dataset_provenance(dataset) is flags
        assert dataset_provenance(dataset.take([0, 1])) is None
