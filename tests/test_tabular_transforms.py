"""Unit tests for repro.tabular.transforms."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.tabular.dataset import Column, ColumnType, Dataset, is_missing_value
from repro.tabular.transforms import (
    derive_column,
    discretize,
    distinct,
    group_by,
    join,
    normalize,
    pivot_counts,
    project,
    select,
    sort_by,
    train_test_indices,
)


@pytest.fixture
def sales():
    return Dataset.from_rows(
        [
            {"district": "north", "year": 2020, "amount": 100.0},
            {"district": "north", "year": 2021, "amount": 150.0},
            {"district": "south", "year": 2020, "amount": 80.0},
            {"district": "south", "year": 2021, "amount": 90.0},
            {"district": "south", "year": 2021, "amount": 90.0},
        ],
        name="sales",
        ctypes={"year": ColumnType.CATEGORICAL},
    )


@pytest.fixture
def districts():
    return Dataset.from_rows(
        [
            {"district": "north", "population": 40000},
            {"district": "south", "population": 30000},
            {"district": "west", "population": 20000},
        ],
        name="districts",
    )


class TestSelectionProjection:
    def test_select_filters_rows(self, sales):
        northern = select(sales, lambda row: row["district"] == "north")
        assert northern.n_rows == 2

    def test_project_keeps_columns(self, sales):
        projected = project(sales, ["district", "amount"])
        assert projected.column_names == ["district", "amount"]

    def test_distinct_full_row(self, sales):
        assert distinct(sales).n_rows == 4

    def test_distinct_subset(self, sales):
        assert distinct(sales, subset=["district"]).n_rows == 2

    def test_sort_by(self, sales):
        ordered = sort_by(sales, ["amount"])
        assert ordered["amount"].tolist() == sorted(sales["amount"].tolist())

    def test_sort_descending(self, sales):
        ordered = sort_by(sales, ["amount"], descending=True)
        assert ordered["amount"][0] == max(sales["amount"].tolist())

    def test_sort_unknown_column(self, sales):
        with pytest.raises(SchemaError):
            sort_by(sales, ["ghost"])

    def test_sort_missing_values_last(self):
        ds = Dataset.from_dict({"x": [2.0, None, 1.0]})
        ordered = sort_by(ds, ["x"])
        assert is_missing_value(ordered["x"][2])


class TestJoin:
    def test_inner_join(self, sales, districts):
        joined = join(sales, districts, on="district")
        assert joined.n_rows == sales.n_rows
        assert "population" in joined.column_names

    def test_left_join_keeps_unmatched(self, sales, districts):
        extra = sales.concat(
            Dataset.from_rows([{"district": "harbour", "year": 2020, "amount": 5.0}], ctypes={"year": ColumnType.CATEGORICAL})
        )
        joined = join(extra, districts, on="district", how="left")
        assert joined.n_rows == extra.n_rows
        harbour = [row for row in joined.iter_rows() if row["district"] == "harbour"][0]
        assert is_missing_value(harbour["population"])

    def test_inner_join_drops_unmatched(self, sales, districts):
        small = districts.filter(lambda row: row["district"] == "west")
        with pytest.raises(SchemaError):
            join(sales, small, on="district")  # nothing matches -> empty -> error

    def test_join_column_collision_suffix(self, sales):
        other = Dataset.from_rows(
            [{"district": "north", "amount": 1.0}, {"district": "south", "amount": 2.0}], name="other"
        )
        joined = join(sales, other, on="district")
        assert "amount_right" in joined.column_names

    def test_join_missing_key_rejected(self, sales, districts):
        with pytest.raises(SchemaError):
            join(sales, districts, on="ghost")

    def test_join_bad_how_rejected(self, sales, districts):
        with pytest.raises(SchemaError):
            join(sales, districts, on="district", how="outer")


class TestGroupBy:
    def test_sum_and_mean(self, sales):
        grouped = group_by(sales, ["district"], {"total": ("amount", "sum"), "mean": ("amount", "mean")})
        by_district = {row["district"]: row for row in grouped.iter_rows()}
        assert by_district["north"]["total"] == pytest.approx(250.0)
        assert by_district["south"]["mean"] == pytest.approx(260.0 / 3)

    def test_count_ignores_missing(self):
        ds = Dataset.from_dict({"g": ["a", "a", "b"], "x": [1.0, None, 3.0]})
        grouped = group_by(ds, ["g"], {"n": ("x", "count")})
        by_group = {row["g"]: row["n"] for row in grouped.iter_rows()}
        assert by_group["a"] == 1.0

    def test_unknown_aggregation_rejected(self, sales):
        with pytest.raises(SchemaError):
            group_by(sales, ["district"], {"x": ("amount", "magic")})

    def test_unknown_key_rejected(self, sales):
        with pytest.raises(SchemaError):
            group_by(sales, ["ghost"], {"x": ("amount", "sum")})

    def test_median_min_max_std(self, sales):
        grouped = group_by(
            sales,
            ["district"],
            {"med": ("amount", "median"), "lo": ("amount", "min"), "hi": ("amount", "max"), "sd": ("amount", "std")},
        )
        north = [row for row in grouped.iter_rows() if row["district"] == "north"][0]
        assert north["lo"] == 100.0 and north["hi"] == 150.0


class TestColumnTransforms:
    def test_discretize_width(self, sales):
        binned = discretize(sales, "amount", bins=2)
        assert binned["amount"].ctype == ColumnType.CATEGORICAL
        assert len(binned["amount"].distinct()) <= 2

    def test_discretize_frequency(self, budget_dataset):
        binned = discretize(budget_dataset, "budgeted", bins=4, strategy="frequency")
        counts = binned["budgeted"].value_counts()
        assert len(counts) <= 4

    def test_discretize_preserves_missing(self):
        ds = Dataset.from_dict({"x": [1.0, None, 3.0, 10.0]})
        binned = discretize(ds, "x", bins=2)
        assert is_missing_value(binned["x"][1])

    def test_discretize_non_numeric_rejected(self, sales):
        with pytest.raises(SchemaError):
            discretize(sales, "district")

    def test_discretize_labels(self, sales):
        binned = discretize(sales, "amount", bins=2, labels=["low", "high"])
        assert set(binned["amount"].distinct()) <= {"low", "high"}

    def test_normalize_minmax(self, sales):
        scaled = normalize(sales, columns=["amount"], method="minmax")
        values = scaled["amount"].tolist()
        assert min(values) == pytest.approx(0.0) and max(values) == pytest.approx(1.0)

    def test_normalize_zscore(self, sales):
        scaled = normalize(sales, columns=["amount"], method="zscore")
        values = scaled["amount"].tolist()
        assert abs(sum(values) / len(values)) < 1e-9

    def test_normalize_unknown_method(self, sales):
        with pytest.raises(SchemaError):
            normalize(sales, method="rank")

    def test_derive_column(self, sales):
        derived = derive_column(sales, "amount_k", lambda row: row["amount"] / 1000)
        assert derived["amount_k"][0] == pytest.approx(0.1)

    def test_pivot_counts(self, sales):
        pivoted = pivot_counts(sales, "district", "year")
        assert pivoted.n_rows == 2
        assert any(name.startswith("year=") for name in pivoted.column_names)


class TestTrainTestIndices:
    def test_partition(self):
        train, test = train_test_indices(100, test_fraction=0.25, seed=1)
        assert len(train) + len(test) == 100
        assert not set(train) & set(test)

    def test_reproducible(self):
        assert train_test_indices(50, seed=3) == train_test_indices(50, seed=3)

    def test_invalid_fraction(self):
        with pytest.raises(SchemaError):
            train_test_indices(10, test_fraction=1.5)
