"""Unit tests for the advisor, the baselines and the guidance-rule extraction."""

from __future__ import annotations

import pytest

from repro.core import Advisor, KnowledgeBase, apply_injections, derive_guidance_rules
from repro.core.advisor import Recommendation, fixed_best_on_clean_baseline, random_choice_baseline
from repro.core.rules import guidance_report
from repro.datasets import make_classification_dataset
from repro.exceptions import KnowledgeBaseError
from repro.quality import measure_quality


class TestAdvisorConstruction:
    def test_empty_kb_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            Advisor(KnowledgeBase())

    def test_invalid_k_rejected(self, small_knowledge_base):
        with pytest.raises(KnowledgeBaseError):
            Advisor(small_knowledge_base, k=0)


class TestAdvisorPrediction:
    def test_predict_performance_in_range(self, small_knowledge_base, clean_classification):
        advisor = Advisor(small_knowledge_base, k=5)
        profile = measure_quality(clean_classification, criteria=small_knowledge_base.criteria())
        for algorithm in small_knowledge_base.algorithms():
            assert 0.0 <= advisor.predict_performance(profile, algorithm) <= 1.0

    def test_unknown_algorithm_rejected(self, small_knowledge_base, clean_classification):
        advisor = Advisor(small_knowledge_base)
        profile = measure_quality(clean_classification, criteria=small_knowledge_base.criteria())
        with pytest.raises(KnowledgeBaseError):
            advisor.predict_performance(profile, "quantum_forest")

    def test_ranking_sorted_descending(self, small_knowledge_base, clean_classification):
        advisor = Advisor(small_knowledge_base)
        profile = measure_quality(clean_classification, criteria=small_knowledge_base.criteria())
        ranking = advisor.rank_algorithms(profile)
        scores = [score for _, score in ranking]
        assert scores == sorted(scores, reverse=True)
        assert len(ranking) == len(small_knowledge_base.algorithms())

    def test_distance_weighting_changes_little_on_clean(self, small_knowledge_base, clean_classification):
        profile = measure_quality(clean_classification, criteria=small_knowledge_base.criteria())
        weighted = Advisor(small_knowledge_base, distance_weighting=True).rank_algorithms(profile)
        unweighted = Advisor(small_knowledge_base, distance_weighting=False).rank_algorithms(profile)
        assert {a for a, _ in weighted} == {a for a, _ in unweighted}


class TestAdvisorAdvice:
    def test_advise_on_degraded_source(self, small_knowledge_base):
        advisor = Advisor(small_knowledge_base, k=5)
        unseen = make_classification_dataset(n_rows=100, n_numeric=3, n_categorical=1, seed=77)
        dirty = apply_injections(unseen, {"completeness": 0.4}, seed=1)
        recommendation = advisor.advise(dirty)
        assert isinstance(recommendation, Recommendation)
        assert recommendation.best_algorithm in small_knowledge_base.algorithms()
        assert recommendation.expected_score == recommendation.ranked_algorithms[0][1]
        assert "completeness" in recommendation.rationale or "quality" in recommendation.rationale
        assert recommendation.neighbours_used == 5
        payload = recommendation.as_dict()
        assert payload["best_algorithm"] == recommendation.best_algorithm
        assert len(payload["ranking"]) == len(small_knowledge_base.algorithms())

    def test_advise_profile_restricts_candidates(self, small_knowledge_base, clean_classification):
        advisor = Advisor(small_knowledge_base)
        profile = measure_quality(clean_classification, criteria=small_knowledge_base.criteria())
        recommendation = advisor.advise_profile(profile, algorithms=["knn", "one_r"])
        assert recommendation.best_algorithm in {"knn", "one_r"}
        assert len(recommendation.ranked_algorithms) == 2

    def test_advice_reflects_kb_sensitivity(self, small_knowledge_base):
        """On a heavily incomplete source the advisor should not pick the
        algorithm the KB records as the most damaged by missing values."""
        advisor = Advisor(small_knowledge_base, k=5)
        unseen = make_classification_dataset(n_rows=100, n_numeric=3, n_categorical=1, seed=78)
        dirty = apply_injections(unseen, {"completeness": 0.4}, seed=2)
        recommendation = advisor.advise(dirty)
        most_fragile = small_knowledge_base.robustness_ranking("completeness")[-1][0]
        assert recommendation.best_algorithm != most_fragile


class TestBaselines:
    def test_random_choice_deterministic_given_seed(self):
        algorithms = ["a", "b", "c"]
        assert random_choice_baseline(algorithms, seed=1) == random_choice_baseline(algorithms, seed=1)
        with pytest.raises(KnowledgeBaseError):
            random_choice_baseline([])

    def test_fixed_best_on_clean(self, small_knowledge_base):
        best = fixed_best_on_clean_baseline(small_knowledge_base)
        assert best in small_knowledge_base.algorithms()
        clean_means = {
            algorithm: small_knowledge_base.mean_metric(algorithm, phase="clean_baseline")
            for algorithm in small_knowledge_base.algorithms()
        }
        assert clean_means[best] == max(clean_means.values())

    def test_fixed_best_rejects_empty(self):
        with pytest.raises(KnowledgeBaseError):
            fixed_best_on_clean_baseline(KnowledgeBase())


class TestGuidanceRules:
    def test_rules_derived(self, small_knowledge_base):
        rules = derive_guidance_rules(small_knowledge_base, threshold=0.9, min_observations=3)
        assert rules, "expected at least one guidance rule from the knowledge base"
        for rule in rules:
            assert rule.best_score >= rule.worst_score
            assert rule.best_algorithm != rule.worst_algorithm
            assert "prefer" in rule.as_text()
            payload = rule.as_dict()
            assert payload["criterion"] == rule.criterion

    def test_rules_empty_kb_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            derive_guidance_rules(KnowledgeBase())

    def test_min_gap_filters_trivial_rules(self, small_knowledge_base):
        strict = derive_guidance_rules(small_knowledge_base, min_gap=0.5)
        lax = derive_guidance_rules(small_knowledge_base, min_gap=0.0)
        assert len(strict) <= len(lax)

    def test_guidance_report_rendering(self, small_knowledge_base):
        rules = derive_guidance_rules(small_knowledge_base)
        text = guidance_report(rules)
        assert "DQ4DM" in text
        assert guidance_report([]).startswith("No guidance rules")
