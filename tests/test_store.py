"""Round-trip and bit-identicality tests for the binary persistence tier.

The contract under test (docs/encoded-core.md §5, docs/store-format.md):
reopening a saved store file yields memory-mapped views **bit-identical**
to a cold in-memory encode of the same payload, every hot path computes
identical results on them, the mapped arrays are read-only, and opening
never mutates the file.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bi import Cube, Dimension, Measure
from repro.datasets import service_requests
from repro.lod.graph import Graph
from repro.lod.publish import publish_dataset
from repro.lod.query import TriplePattern, Variable, count, select
from repro.lod.terms import Literal, Triple
from repro.lod.vocabulary import Namespace, RDF
from repro.mining import NaiveBayesClassifier, cross_validate
from repro.quality import measure_quality
from repro.store import (
    StoreFile,
    open_dataset,
    open_graph,
    save_dataset,
    save_graph,
)
from repro.tabular.dataset import Column, ColumnType, Dataset
from repro.tabular.encoded import encode_dataset
from repro.tabular.transforms import group_by

EX = Namespace("http://example.org/")


def _source(n_rows=150):
    return service_requests(n_rows=n_rows, dirty=True)


def _view_bytes(dataset):
    """Every encoded view of ``dataset`` as raw bytes, keyed by view name."""
    encoded = encode_dataset(dataset)
    views = {}
    for column in dataset.columns:
        name = column.name
        values, missing = encoded.numeric_view(name)
        views[f"{name}.num"] = values.tobytes()
        views[f"{name}.nmk"] = missing.tobytes()
        if column.ctype != ColumnType.NUMERIC:
            codes, vocabulary, index = encoded.codes_view(name)
            views[f"{name}.cod"] = codes.tobytes()
            views[f"{name}.lev"] = tuple(vocabulary)
            views[f"{name}.idx"] = tuple(index.items())
            views[f"{name}.nrm"] = tuple(encoded.normalised_levels(name))
    return views


# -- dataset round trip -------------------------------------------------------


def test_dataset_roundtrip_views_bit_identical(tmp_path):
    dataset = _source()
    path = save_dataset(dataset, tmp_path / "sr.rps")
    opened = open_dataset(path)
    assert opened.n_rows == dataset.n_rows
    assert opened.column_names == dataset.column_names
    assert opened == dataset
    assert _view_bytes(opened) == _view_bytes(dataset)


def test_dataset_roundtrip_cells_and_schema(tmp_path):
    dataset = _source()
    opened = open_dataset(save_dataset(dataset, tmp_path / "sr.rps"))
    for column in dataset.columns:
        reopened = opened[column.name]
        assert reopened.ctype == column.ctype
        assert reopened.role == column.role
        cells = column.tolist()
        recells = reopened.tolist()
        assert len(cells) == len(recells)
        for a, b in zip(cells, recells):
            if isinstance(a, float) and np.isnan(a):
                assert isinstance(b, float) and np.isnan(b)
            else:
                assert a == b and type(a) is type(b)


def test_force_memory_identical(tmp_path):
    dataset = _source()
    path = save_dataset(dataset, tmp_path / "sr.rps")
    mapped = open_dataset(path)
    in_memory = open_dataset(path, force_memory=True)
    assert _view_bytes(mapped) == _view_bytes(in_memory)
    # only the memmap tier is read-only; the escape hatch owns its arrays
    mapped_values, _ = encode_dataset(mapped).numeric_view("resolution_days")
    with pytest.raises(ValueError):
        np.asarray(mapped_values)[0] = 1.0


def test_dataset_open_method_and_verify(tmp_path):
    dataset = _source(80)
    path = dataset.save(tmp_path / "sr.rps")
    opened = Dataset.open(path, verify=True)
    assert opened == dataset


# -- hot-path parity ----------------------------------------------------------


def test_profile_identical_on_reopened_dataset(tmp_path):
    dataset = _source().set_target("resolved_late")
    opened = open_dataset(save_dataset(dataset, tmp_path / "sr.rps"))
    before = json.dumps(measure_quality(dataset).to_json_dict(), sort_keys=True)
    after = json.dumps(measure_quality(opened).to_json_dict(), sort_keys=True)
    assert before == after


def test_group_by_and_cube_identical_on_reopened_dataset(tmp_path):
    dataset = _source()
    opened = open_dataset(save_dataset(dataset, tmp_path / "sr.rps"))
    aggregations = {
        "mean_days": ("resolution_days", "mean"),
        "total_backlog": ("open_backlog", "sum"),
        "n": ("resolution_days", "count"),
    }
    assert group_by(opened, ["district"], aggregations) == group_by(
        dataset, ["district"], aggregations
    )

    def cube_of(ds):
        return Cube(
            ds,
            dimensions=[Dimension("district", ("district",))],
            measures=[Measure("mean_days", "resolution_days", "mean")],
        ).rollup("district")

    assert cube_of(opened) == cube_of(dataset)


def test_cube_grand_total_on_reopened_dataset(tmp_path):
    """Regression: ``Cube.aggregate(None)`` built its ``__all__`` pseudo-column
    with ``type(columns[0])``, which blew up on memory-mapped StoredColumns."""
    dataset = _source()
    opened = open_dataset(save_dataset(dataset, tmp_path / "sr.rps"))

    def total_of(ds):
        return Cube(
            ds,
            dimensions=[Dimension("district", ("district",))],
            measures=[Measure("mean_days", "resolution_days", "mean")],
        ).aggregate()

    assert total_of(opened) == total_of(dataset)


def test_cross_validation_identical_on_reopened_dataset(tmp_path):
    dataset = _source(120).set_target("resolved_late")
    opened = open_dataset(save_dataset(dataset, tmp_path / "sr.rps"))
    opened = opened.set_target("resolved_late")
    before = cross_validate(NaiveBayesClassifier, dataset, k=3, seed=0)
    after = cross_validate(NaiveBayesClassifier, opened, k=3, seed=0)
    assert before.fold_accuracies == after.fold_accuracies
    assert before.accuracy == after.accuracy
    assert before.macro_f1 == after.macro_f1


# -- graph round trip ---------------------------------------------------------


def test_graph_roundtrip_is_order_identical(tmp_path):
    graph = publish_dataset(_source(60))
    path = save_graph(graph, tmp_path / "g.rps")
    opened = open_graph(path)
    assert len(opened) == len(graph)
    assert opened.identifier == graph.identifier
    assert opened.prefixes.keys() == graph.prefixes.keys()
    # reference-tier iteration order replays exactly
    assert [t.n3() for t in opened] == [t.n3() for t in graph]
    for s, p, o in [(None, RDF.type, None), (None, None, None)]:
        assert [t.n3() for t in opened.triples(s, p, o)] == [
            t.n3() for t in graph.triples(s, p, o)
        ]


def test_graph_select_identical_both_tiers(tmp_path):
    graph = publish_dataset(_source(60))
    opened = open_graph(save_graph(graph, tmp_path / "g.rps"))
    patterns = [TriplePattern(Variable("s"), RDF.type, Variable("t"))]
    for force_row in (False, True):
        expected = select(graph, patterns, force_row=force_row)
        actual = select(opened, patterns, force_row=force_row)
        assert actual == expected
    assert count(opened, patterns) == count(graph, patterns)


def test_graph_open_method_and_mutation(tmp_path):
    graph = publish_dataset(_source(40))
    path = graph.save(tmp_path / "g.rps")
    snapshot = path.read_bytes()
    opened = Graph.open(path, verify=True)
    victim = next(iter(opened))
    assert opened.remove(victim)
    assert victim not in opened
    assert len(opened) == len(graph) - 1
    opened.add_triple(victim)
    assert victim in opened
    opened.add(EX.extra, RDF.type, EX.Thing)
    assert len(opened) == len(graph) + 1
    # copy-on-write: mutating the reopened graph never touches the file
    assert path.read_bytes() == snapshot


# -- no-mutation snapshot -----------------------------------------------------


def test_open_and_use_never_mutates_the_file(tmp_path):
    dataset = _source().set_target("resolved_late")
    path = save_dataset(dataset, tmp_path / "sr.rps")
    snapshot = path.read_bytes()
    opened = open_dataset(path)
    measure_quality(opened)
    group_by(opened, ["district"], {"n": ("resolution_days", "count")})
    opened.take([0, 2, 4])
    assert path.read_bytes() == snapshot

    graph = publish_dataset(dataset)
    graph_path = save_graph(graph, tmp_path / "g.rps")
    graph_snapshot = graph_path.read_bytes()
    opened_graph = open_graph(graph_path)
    select(opened_graph, [TriplePattern(Variable("s"), RDF.type, Variable("t"))])
    list(opened_graph)
    assert graph_path.read_bytes() == graph_snapshot


def test_memmap_views_are_read_only(tmp_path):
    dataset = _source(50)
    opened = open_dataset(save_dataset(dataset, tmp_path / "sr.rps"))
    encoded = encode_dataset(opened)
    values, _ = encoded.numeric_view("resolution_days")
    codes, _, _ = encoded.codes_view("district")
    cat_values, cat_missing = encoded.numeric_view("district")
    for array in (values, codes, cat_values, cat_missing):
        with pytest.raises(ValueError):
            np.asarray(array)[0] = 0


# -- edge cases ---------------------------------------------------------------


def test_roundtrip_boolean_datetime_unicode_and_all_missing(tmp_path):
    dataset = Dataset(
        [
            Column("flag", [True, False, None, True], ctype=ColumnType.BOOLEAN),
            Column(
                "when",
                ["2024-01-01", "2024-06-30", None, "2025-02-28"],
                ctype=ColumnType.DATETIME,
            ),
            Column("city", ["oslo", "bønn–æøå", "合肥", None], ctype=ColumnType.CATEGORICAL),
            Column("empty", [None, None, None, None], ctype=ColumnType.NUMERIC),
            Column("gone", [None, None, None, None], ctype=ColumnType.CATEGORICAL),
        ],
        name="edge",
    )
    opened = open_dataset(save_dataset(dataset, tmp_path / "edge.rps"))
    assert opened == dataset
    assert _view_bytes(opened) == _view_bytes(dataset)
    assert opened["flag"].tolist()[:2] == [True, False]
    assert opened["flag"].tolist()[2] is None
    assert opened["city"].tolist()[1] == "bønn–æøå"


def test_roundtrip_single_row_and_empty_graph(tmp_path):
    dataset = Dataset([Column("x", [1.0])], name="one")
    assert open_dataset(save_dataset(dataset, tmp_path / "one.rps")) == dataset

    graph = Graph("http://example.org/empty")
    opened = open_graph(save_graph(graph, tmp_path / "empty.rps"))
    assert len(opened) == 0
    assert list(opened) == []
    opened.add(EX.s, RDF.type, EX.T)
    assert len(opened) == 1


def test_store_file_inspection_surface(tmp_path):
    dataset = _source(30)
    path = save_dataset(dataset, tmp_path / "sr.rps")
    store_file = StoreFile(path)
    assert "meta" in store_file.sections
    assert store_file.verify() == {}
    from repro.store import inspect_store

    info = inspect_store(path, verify=True)
    assert info["payload"] == "dataset"
    assert not info["damaged"]
    json.dumps(info)  # must stay JSON-serialisable


# -- property suite -----------------------------------------------------------

_cell_numbers = st.one_of(
    st.none(),
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)
_cell_categories = st.one_of(
    st.none(),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=0x2F00), max_size=8
    ),
)


@st.composite
def mixed_datasets(draw, min_rows: int = 1, max_rows: int = 25):
    """Random datasets with numeric, categorical and boolean columns."""
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    numbers = draw(st.lists(_cell_numbers, min_size=n, max_size=n))
    categories = draw(st.lists(_cell_categories, min_size=n, max_size=n))
    flags = draw(st.lists(st.one_of(st.none(), st.booleans()), min_size=n, max_size=n))
    return Dataset(
        [
            Column("value", numbers, ctype=ColumnType.NUMERIC),
            Column("zone", categories, ctype=ColumnType.CATEGORICAL),
            Column("flag", flags, ctype=ColumnType.BOOLEAN),
        ],
        name="generated",
    )


@given(mixed_datasets())
@settings(max_examples=30, deadline=None)
def test_property_dataset_roundtrip(tmp_path_factory, dataset):
    path = tmp_path_factory.mktemp("store") / "p.rps"
    opened = open_dataset(save_dataset(dataset, path))
    assert opened == dataset
    assert _view_bytes(opened) == _view_bytes(dataset)


_subjects = st.sampled_from([EX[f"s{i}"] for i in range(6)])
_predicates = st.sampled_from([EX[f"p{i}"] for i in range(4)])
_literal_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20),
)
_objects = st.one_of(_subjects, _literal_values.map(Literal))
_triple_lists = st.lists(st.builds(Triple, _subjects, _predicates, _objects), max_size=50)


@given(_triple_lists)
@settings(max_examples=30, deadline=None)
def test_property_graph_roundtrip(tmp_path_factory, triples):
    graph = Graph("http://example.org/prop")
    for triple in triples:
        graph.add_triple(triple)
    path = tmp_path_factory.mktemp("store") / "p.rps"
    opened = open_graph(save_graph(graph, path))
    # order-sensitive equality; terms compare with the library's ``==`` (the
    # interner conflates ==-equal literals like 0 and 0.0 by design)
    assert list(opened) == list(graph)
    patterns = [TriplePattern(Variable("s"), Variable("p"), Variable("o"))]
    assert select(opened, patterns) == select(graph, patterns)
    assert select(opened, patterns, force_row=True) == select(
        graph, patterns, force_row=True
    )


# -- CLI smoke ----------------------------------------------------------------


def test_cli_store_roundtrip(tmp_path, capsys):
    from repro.cli.main import main
    from repro.tabular.io_csv import write_csv

    csv_path = write_csv(_source(40), tmp_path / "sr.csv")
    store_path = tmp_path / "sr.rps"
    assert main(["store", "save", str(csv_path), str(store_path)]) == 0
    assert main(["store", "open", str(store_path), "--head", "2"]) == 0
    assert main(["store", "inspect", str(store_path), "--verify"]) == 0
    out = capsys.readouterr().out
    assert "dataset" in out
    assert "c0" in out


def test_cli_store_graph_roundtrip(tmp_path, capsys):
    from repro.cli.main import main
    from repro.lod.serialization import to_ntriples

    graph = publish_dataset(_source(20))
    nt_path = tmp_path / "g.nt"
    to_ntriples(graph, nt_path)
    store_path = tmp_path / "g.rps"
    assert main(["store", "save", str(nt_path), str(store_path)]) == 0
    assert main(["store", "open", str(store_path), "--head", "1", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "triples" in out
