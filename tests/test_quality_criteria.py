"""Unit tests for the individual data quality criteria.

The central property of every criterion is that injecting the matching data
quality problem *lowers* its score, and that clean data scores (close to) 1.
"""

from __future__ import annotations

import pytest

from repro.core.injection import (
    CorrelatedAttributesInjector,
    DuplicateInjector,
    ImbalanceInjector,
    InconsistencyInjector,
    IrrelevantAttributesInjector,
    MissingValuesInjector,
    NoiseInjector,
    OutlierInjector,
)
from repro.exceptions import DataQualityError
from repro.quality import (
    AccuracyCriterion,
    BalanceCriterion,
    CompletenessCriterion,
    ConsistencyCriterion,
    CorrelationCriterion,
    CRITERIA_REGISTRY,
    DimensionalityCriterion,
    DuplicationCriterion,
    OutlierCriterion,
    get_criterion,
)
from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.schema import infer_schema


class TestRegistry:
    def test_all_default_criteria_registered(self):
        expected = {
            "completeness",
            "accuracy",
            "consistency",
            "duplication",
            "correlation",
            "balance",
            "dimensionality",
            "outliers",
        }
        assert expected <= set(CRITERIA_REGISTRY)

    def test_get_criterion_by_name(self):
        criterion = get_criterion("completeness")
        assert isinstance(criterion, CompletenessCriterion)

    def test_unknown_criterion_rejected(self):
        with pytest.raises(DataQualityError):
            get_criterion("beauty")

    def test_register_requires_unique_name(self):
        with pytest.raises(DataQualityError):

            @register_criterion
            class Anonymous(Criterion):  # noqa: N801 - intentional test class
                name = "criterion"

                def measure(self, dataset):  # pragma: no cover - never called
                    return CriterionMeasure("criterion", 1.0)

    def test_measure_score_validated(self):
        with pytest.raises(DataQualityError):
            CriterionMeasure("x", 1.5)


class TestCompleteness:
    def test_clean_data_scores_one(self, clean_classification):
        assert CompletenessCriterion().measure(clean_classification).score == 1.0

    def test_missing_values_lower_the_score(self, clean_classification):
        degraded = MissingValuesInjector().apply(clean_classification, 0.3, seed=1)
        measure = CompletenessCriterion().measure(degraded)
        assert measure.score < 0.85
        assert measure.score == pytest.approx(0.7, abs=0.07)

    def test_per_column_details(self, tiny_dataset):
        measure = CompletenessCriterion().measure(tiny_dataset)
        assert measure.details["per_column"]["amount"] == pytest.approx(0.8)

    def test_monotone_in_severity(self, clean_classification):
        scores = [
            CompletenessCriterion().measure(MissingValuesInjector().apply(clean_classification, s, seed=2)).score
            for s in (0.0, 0.2, 0.5)
        ]
        assert scores[0] > scores[1] > scores[2]


class TestAccuracy:
    def test_outlier_noise_detected(self, clean_classification):
        noisy = NoiseInjector(magnitude=10.0).apply(clean_classification, 0.25, seed=3)
        assert AccuracyCriterion().measure(noisy).score < AccuracyCriterion().measure(clean_classification).score

    def test_spelling_variants_detected(self, budget_dataset):
        corrupted = InconsistencyInjector().apply(budget_dataset, 0.6, seed=4)
        assert AccuracyCriterion().measure(corrupted).score < 1.0

    def test_schema_reference_counts_domain_errors(self, budget_dataset):
        schema = infer_schema(budget_dataset)
        corrupted = NoiseInjector(magnitude=12.0).apply(budget_dataset, 0.3, seed=5)
        without_schema = AccuracyCriterion().measure(corrupted).score
        with_schema = AccuracyCriterion(schema=schema).measure(corrupted).score
        assert with_schema <= 1.0
        assert with_schema < 1.0 or without_schema < 1.0


class TestConsistency:
    def test_clean_data_consistent_with_inferred_schema(self, budget_dataset):
        assert ConsistencyCriterion().measure(budget_dataset).score == 1.0

    def test_violations_against_reference_schema(self, budget_dataset):
        schema = infer_schema(budget_dataset)
        corrupted = InconsistencyInjector().apply(budget_dataset, 0.8, seed=6)
        measure = ConsistencyCriterion(schema=schema).measure(corrupted)
        assert measure.score < 1.0
        assert measure.details["n_violations"] > 0


class TestDuplication:
    def test_clean_data_has_no_duplicates(self, clean_classification):
        assert DuplicationCriterion().measure(clean_classification).score == 1.0

    def test_exact_duplicates_detected(self, clean_classification):
        duplicated = DuplicateInjector().apply(clean_classification, 0.25, seed=7)
        measure = DuplicationCriterion().measure(duplicated)
        assert measure.score == pytest.approx(1 - 0.25 / 1.25, abs=0.03)

    def test_fuzzy_duplicates_detected_only_in_fuzzy_mode(self, requests_dataset):
        near_duplicated = DuplicateInjector(fuzzy=True).apply(requests_dataset, 0.2, seed=8)
        strict = DuplicationCriterion(fuzzy=False).measure(near_duplicated).score
        fuzzy = DuplicationCriterion(fuzzy=True).measure(near_duplicated).score
        assert fuzzy <= strict


class TestCorrelation:
    def test_redundant_attributes_lower_the_score(self, clean_classification):
        correlated = CorrelatedAttributesInjector().apply(clean_classification, 0.8, seed=9)
        baseline = CorrelationCriterion().measure(clean_classification).score
        degraded = CorrelationCriterion().measure(correlated).score
        assert degraded < baseline
        assert CorrelationCriterion().measure(correlated).details["redundant_pairs"]

    def test_dataset_without_pairs_scores_one(self, tiny_dataset):
        single = tiny_dataset.select_columns(["amount", "label"]).set_target("label")
        assert CorrelationCriterion().measure(single).score == 1.0


class TestBalance:
    def test_balanced_target_scores_high(self, clean_classification):
        assert BalanceCriterion().measure(clean_classification).score > 0.95

    def test_imbalance_lowers_the_score(self, clean_classification):
        skewed = ImbalanceInjector().apply(clean_classification, 0.9, seed=10)
        measure = BalanceCriterion().measure(skewed)
        assert measure.score < 0.7
        assert measure.details["imbalance_ratio"] > 3

    def test_fallback_without_target(self, clustered_dataset):
        measure = BalanceCriterion().measure(clustered_dataset)
        assert 0.0 <= measure.score <= 1.0


class TestDimensionality:
    def test_adding_attributes_lowers_the_score(self, clean_classification):
        wide = IrrelevantAttributesInjector(max_added=50).apply(clean_classification, 1.0, seed=11)
        assert (
            DimensionalityCriterion().measure(wide).score
            < DimensionalityCriterion().measure(clean_classification).score
        )

    def test_details_report_shape(self, clean_classification):
        details = DimensionalityCriterion().measure(clean_classification).details
        assert details["n_rows"] == clean_classification.n_rows
        assert details["n_features"] == len(clean_classification.feature_columns())

    def test_invalid_reference_ratio(self):
        with pytest.raises(ValueError):
            DimensionalityCriterion(reference_ratio=0)


class TestOutliers:
    def test_outlier_injection_detected(self, clean_classification):
        spiked = OutlierInjector().apply(clean_classification, 0.8, seed=12)
        assert OutlierCriterion().measure(spiked).score < OutlierCriterion().measure(clean_classification).score

    def test_non_numeric_dataset_scores_one(self, transactions_dataset):
        assert OutlierCriterion().measure(transactions_dataset).score == 1.0

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            OutlierCriterion(iqr_factor=-1)
