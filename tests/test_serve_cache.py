"""Property suite for serving-tier fingerprints and the result cache.

Hypothesis drives two families of properties:

* **fingerprint soundness** — saving identical content twice yields the
  same fingerprint (cache hits survive a byte-identical re-save), while
  mutating a single cell yields a different one (a changed store can
  never alias a cached result);
* **cache/swap interleavings** — arbitrary sequences of {query,
  re-save-modified-store, swap, query} driven through
  :meth:`repro.serve.ReproApp.handle` (the exact code path the HTTP
  server runs, minus sockets) never return a response whose fingerprint
  differs from the currently-registered snapshot, and every body is
  bit-identical to a direct library call on the store file that snapshot
  was opened from.
"""

from __future__ import annotations

import itertools
import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.serve import (
    FINGERPRINT_HEADER,
    ReproApp,
    ResultCache,
    SnapshotRegistry,
    canonical_query,
    encode_response,
    evaluate,
    fingerprint_path,
)
from repro.store import open_dataset
from repro.tabular.dataset import Dataset

#: Unique file names across hypothesis examples sharing one tmp_path.
_FILE_COUNTER = itertools.count()

_GROUPS = ["alpha", "beta", "gamma"]

#: The two cheap queries the interleaving machine fires.
_QUERIES = [
    ("/cube/aggregate", {
        "dimensions": ["g"],
        "measures": [{"column": "x", "aggregation": "sum"},
                     {"column": "x", "aggregation": "count", "name": "n"}],
        "levels": ["g"],
    }),
    ("/profile", {"criteria": ["completeness", "balance", "duplication"]}),
]


def _make_dataset(version: int, n_rows: int = 8) -> Dataset:
    """A tiny deterministic dataset whose content is a function of ``version``."""
    rows = [
        {"g": _GROUPS[i % len(_GROUPS)], "x": float(i) + version * 0.5, "y": float((i * 7) % 5)}
        for i in range(n_rows)
    ]
    return Dataset.from_rows(rows, name="tiny")


def _save(dataset: Dataset, tmp_path):
    """Save to a path that is unique across hypothesis examples."""
    return dataset.save(tmp_path / f"s{next(_FILE_COUNTER):05d}.rps")


# -- fingerprint soundness ----------------------------------------------------


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(version=st.integers(min_value=0, max_value=1_000), n_rows=st.integers(2, 16))
def test_identical_content_shares_a_fingerprint(tmp_path, version, n_rows):
    """Equal content ⇒ equal fingerprint, whatever file it was saved to."""
    first = _save(_make_dataset(version, n_rows), tmp_path)
    second = _save(_make_dataset(version, n_rows), tmp_path)
    assert fingerprint_path(first) == fingerprint_path(second)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    version=st.integers(min_value=0, max_value=1_000),
    row=st.integers(min_value=0, max_value=7),
    column=st.sampled_from(["g", "x", "y"]),
)
def test_one_cell_mutation_changes_the_fingerprint(tmp_path, version, row, column):
    """Any single-cell edit must produce a different fingerprint."""
    base = _make_dataset(version)
    pristine = _save(base, tmp_path)
    rows = base.to_rows()
    rows[row][column] = "MUTATED" if column == "g" else float(rows[row][column]) + 1.0
    mutated = _save(Dataset.from_rows(rows, name="tiny"), tmp_path)
    assert fingerprint_path(pristine) != fingerprint_path(mutated)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(version=st.integers(min_value=0, max_value=1_000))
def test_fingerprint_ignores_the_file_name(tmp_path, version):
    """The fingerprint is content identity — paths and mtimes don't leak in."""
    dataset = _make_dataset(version)
    assert fingerprint_path(dataset.save(tmp_path / f"a{version}.rps")) == fingerprint_path(
        dataset.save(tmp_path / f"completely-different-name-{version}.rps")
    )


# -- cache/swap interleavings -------------------------------------------------


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    ops=st.lists(
        st.sampled_from(["query0", "query1", "modify", "swap"]),
        min_size=1, max_size=12,
    )
)
def test_interleavings_never_serve_stale_or_torn_results(tmp_path, ops):
    """The central cache property, under arbitrary op interleavings.

    Whatever order queries, re-saves and swaps arrive in: a query's
    fingerprint always equals the registered snapshot's, and its body is
    bit-identical to the direct library call on that snapshot's file —
    so a cached result can never outlive the content it was computed on.
    """
    version = 0
    live_path = pending_path = _save(_make_dataset(version), tmp_path)
    registry = SnapshotRegistry()
    registry.publish("tiny", live_path)
    app = ReproApp(registry, ResultCache(max_entries=8))
    try:
        for op in ops:
            if op == "modify":
                version += 1
                pending_path = _save(_make_dataset(version), tmp_path)
            elif op == "swap":
                status, _, body = app.handle(
                    "POST", "/reload", {"name": "tiny", "path": str(pending_path)}
                )
                assert status == 200
                reply = json.loads(body)
                expected_change = fingerprint_path(pending_path) != fingerprint_path(live_path)
                assert reply["changed"] == expected_change
                live_path = pending_path
            else:
                path, params = _QUERIES[0 if op == "query0" else 1]
                status, headers, body = app.handle("POST", path, params)
                assert status == 200
                # Never stale: the response carries the registered fingerprint.
                assert headers[FINGERPRINT_HEADER] == registry.get("tiny").fingerprint
                assert headers[FINGERPRINT_HEADER] == fingerprint_path(live_path)
                # Never torn: bit-identical to the direct call on that file.
                direct = open_dataset(live_path)
                try:
                    assert body == encode_response(evaluate(path, direct, params))
                finally:
                    direct.close()
                assert len(app.cache) <= 8
    finally:
        registry.close_all()


# -- deterministic cache unit properties --------------------------------------


def test_canonical_query_is_key_order_insensitive():
    """Spelling-level differences collapse to one canonical key."""
    a = canonical_query({"b": [1, 2], "a": {"y": 1, "x": 2}})
    b = canonical_query({"a": {"x": 2, "y": 1}, "b": [1, 2]})
    assert a == b


def test_lru_eviction_is_bounded_and_oldest_first():
    """The cache never exceeds its bound and evicts least-recently-used."""
    cache = ResultCache(max_entries=3)
    for i in range(5):
        cache.put("fp", "/e", f"q{i}", b"%d" % i)
    assert len(cache) == 3
    assert cache.get("fp", "/e", "q0") is None
    assert cache.get("fp", "/e", "q1") is None
    assert cache.get("fp", "/e", "q4") == b"4"
    stats = cache.stats()
    assert stats["evictions"] == 2
    assert stats["entries"] == 3


def test_get_refreshes_recency():
    """A hit protects the entry from the next eviction."""
    cache = ResultCache(max_entries=2)
    cache.put("fp", "/e", "old", b"old")
    cache.put("fp", "/e", "new", b"new")
    assert cache.get("fp", "/e", "old") == b"old"
    cache.put("fp", "/e", "newest", b"newest")
    assert cache.get("fp", "/e", "old") == b"old", "recently-used entry survived"
    assert cache.get("fp", "/e", "new") is None, "least-recently-used entry evicted"


def test_prune_drops_only_retired_fingerprints():
    """``prune`` clears retired snapshots' entries and keeps live ones."""
    cache = ResultCache(max_entries=8)
    cache.put("live", "/e", "q", b"keep")
    cache.put("retired", "/e", "q", b"drop")
    cache.put("retired", "/f", "q", b"drop-too")
    assert cache.prune({"live"}) == 2
    assert cache.get("live", "/e", "q") == b"keep"
    assert cache.get("retired", "/e", "q") is None
