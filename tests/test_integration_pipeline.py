"""Integration tests: the KDD pipeline (Figure 1) and the framework (Figure 2) end to end."""

from __future__ import annotations

import pytest

from repro.bi import Cube, Dashboard, Dimension, KPI, Measure
from repro.core import Advisor, ExperimentPlan, ExperimentRunner, UserProfile, apply_injections, derive_guidance_rules
from repro.core.advisor import fixed_best_on_clean_baseline, random_choice_baseline
from repro.datasets import air_quality, civic_lod_graph, municipal_budget, service_requests
from repro.datasets.civic import CIVIC
from repro.lod import EntityLinker, LinkRule, parse_ntriples, to_ntriples
from repro.lod.publish import publish_quality_profile
from repro.lod.tabulate import tabulate_entities
from repro.lod.vocabulary import DQV
from repro.metamodel import annotate_quality, model_from_lod, read_quality_annotations
from repro.mining import CLASSIFIER_REGISTRY, Apriori, dataset_to_transactions, train_test_split
from repro.quality import measure_quality
from repro.tabular import read_csv, write_csv


class TestKDDPipeline:
    """Figure 1: data sources -> integration -> selection/mining -> evaluation -> knowledge."""

    def test_csv_to_knowledge(self, tmp_path):
        # (i) data sources published as CSV, integrated into a repository
        source = service_requests(n_rows=150, seed=5, dirty=True)
        path = write_csv(source, tmp_path / "requests.csv")
        loaded = read_csv(path).set_target("resolved_late").set_role("request_id", "identifier")

        # preprocessing: quality measurement guides attribute/algorithm selection
        profile = measure_quality(loaded)
        assert 0.0 < profile.overall() <= 1.0

        # (ii) mining
        train, test = train_test_split(loaded, seed=1)
        model = CLASSIFIER_REGISTRY["decision_tree"]().fit(train)

        # (iii) evaluation of the resulting patterns
        accuracy = model.score(test)
        rules = model.extract_rules()
        assert accuracy > 0.5
        assert rules and all(rule["coverage"] > 0 for rule in rules)

    def test_lod_to_knowledge(self):
        # LOD source -> common representation -> annotated quality -> mining-ready table
        graph = civic_lod_graph(air_quality(n_rows=120, seed=1), entity_class="AirQualityReading")
        table = tabulate_entities(graph, CIVIC.AirQualityReading)
        table = table.set_target("alert")
        profile = measure_quality(table)
        catalog = model_from_lod(graph)
        annotate_quality(catalog.find_table("AirQualityReading"), profile)
        scores = read_quality_annotations(catalog.find_table("AirQualityReading"))
        assert scores["completeness"] == pytest.approx(profile.score("completeness"))

        train, test = train_test_split(table, seed=0)
        model = CLASSIFIER_REGISTRY["naive_bayes"]().fit(train)
        assert model.score(test) > 0.7


class TestFrameworkEndToEnd:
    """Figure 2: experiments -> DQ4DM knowledge base -> advice for a non-expert."""

    def test_advisor_beats_random_on_degraded_sources(self, small_knowledge_base):
        from repro.datasets import make_classification_dataset

        advisor = Advisor(small_knowledge_base, k=5)
        algorithms = small_knowledge_base.algorithms()
        advisor_wins = 0
        trials = 0
        for seed, injections in enumerate(
            [{"completeness": 0.4}, {"accuracy": 0.3}, {"balance": 0.7}, {"completeness": 0.3, "accuracy": 0.2}]
        ):
            unseen = make_classification_dataset(n_rows=120, n_numeric=3, n_categorical=1, seed=100 + seed)
            dirty = apply_injections(unseen, injections, seed=seed)
            recommendation = advisor.advise(dirty)
            from repro.mining import cross_validate

            actual = {
                name: cross_validate(CLASSIFIER_REGISTRY[name], dirty, k=3).accuracy for name in algorithms
            }
            advised = actual[recommendation.best_algorithm]
            random_pick = actual[random_choice_baseline(algorithms, seed=seed)]
            trials += 1
            if advised >= random_pick:
                advisor_wins += 1
        assert advisor_wins >= trials - 1, "advice should not lose to random choice more than once"

    def test_guidance_rules_and_lod_sharing(self, small_knowledge_base, tmp_path):
        rules = derive_guidance_rules(small_knowledge_base)
        assert rules
        # the knowledge base itself survives a persistence round trip
        from repro.core import KnowledgeBase

        restored = KnowledgeBase.from_json(small_knowledge_base.to_json(tmp_path / "kb.json"))
        assert len(restored) == len(small_knowledge_base)

        # quality measurements of an unseen source are shared as LOD and read back
        dirty = municipal_budget(n_rows=80, seed=6, dirty=True)
        profile = measure_quality(dirty)
        graph = publish_quality_profile(profile, dirty.name)
        roundtrip = parse_ntriples(to_ntriples(graph))
        measurements = roundtrip.subjects_of_type(DQV.QualityMeasurement)
        assert len(measurements) == len(profile.criteria())


class TestOpenBIWorkflow:
    """Reporting + OLAP + dashboards on integrated, linked open data."""

    def test_linked_sources_to_dashboard(self, small_knowledge_base):
        budget = municipal_budget(n_rows=120, seed=1)
        requests = service_requests(n_rows=120, seed=2)
        budget_graph = civic_lod_graph(budget, entity_class="BudgetLine")
        requests_graph = civic_lod_graph(requests, entity_class="ServiceRequest")
        linker = EntityLinker([LinkRule(CIVIC["district"], CIVIC["district"])], threshold=0.99)
        links = linker.link(budget_graph, CIVIC.BudgetLine, requests_graph, CIVIC.ServiceRequest)
        assert links

        cube = Cube(
            budget,
            dimensions=[Dimension("district", ("district",)), Dimension("category", ("category",))],
            measures=[Measure("total", "budgeted", "sum")],
        )
        transactions = dataset_to_transactions(budget.drop_columns(["line_id", "budgeted", "executed"]))
        apriori = Apriori(min_support=0.05, min_confidence=0.6).fit(transactions)

        dashboard = (
            Dashboard("Integrated city view")
            .add_kpi_panel("KPIs", [KPI("mean execution", "execution_rate", target=0.8)], budget)
            .add_quality_panel("Budget quality", measure_quality(budget))
            .add_cube_panel("Spending by district", cube, ["district"])
            .add_recommendation_panel("Mining advice", Advisor(small_knowledge_base).advise(budget))
        )
        rendered = dashboard.render()
        panel_headers = [line for line in rendered.splitlines() if line.startswith("## ")]
        assert len(panel_headers) == 4
        assert apriori.frequent_itemsets()
