"""Unit tests for the controlled data-quality injectors."""

from __future__ import annotations

import pytest

from repro.core.injection import (
    ClassNoiseInjector,
    CorrelatedAttributesInjector,
    DuplicateInjector,
    INJECTOR_REGISTRY,
    ImbalanceInjector,
    InconsistencyInjector,
    IrrelevantAttributesInjector,
    MissingValuesInjector,
    NoiseInjector,
    OutlierInjector,
    apply_injections,
    get_injector,
)
from repro.exceptions import ExperimentError
from repro.tabular.dataset import ColumnType, Dataset
from repro.tabular.stats import pearson


class TestRegistry:
    def test_injectors_match_quality_criteria_names(self):
        assert {"completeness", "accuracy", "duplication", "balance", "correlation", "dimensionality", "outliers", "consistency"} <= set(INJECTOR_REGISTRY)

    def test_get_injector(self):
        assert isinstance(get_injector("completeness"), MissingValuesInjector)
        with pytest.raises(ExperimentError):
            get_injector("chaos")

    def test_severity_validation(self, clean_classification):
        for name in INJECTOR_REGISTRY:
            with pytest.raises(ExperimentError):
                get_injector(name).apply(clean_classification, 1.5)

    def test_zero_severity_is_identity(self, clean_classification):
        for name in INJECTOR_REGISTRY:
            result = get_injector(name).apply(clean_classification, 0.0, seed=1)
            assert result == clean_classification

    def test_original_never_mutated(self, clean_classification):
        reference = clean_classification.copy()
        for name in INJECTOR_REGISTRY:
            get_injector(name).apply(clean_classification, 0.5, seed=2)
        assert clean_classification == reference

    def test_reproducible_with_seed(self, clean_classification):
        for name in INJECTOR_REGISTRY:
            a = get_injector(name).apply(clean_classification, 0.4, seed=9)
            b = get_injector(name).apply(clean_classification, 0.4, seed=9)
            assert a == b, name


class TestIndividualInjectors:
    def test_missing_values_fraction(self, clean_classification):
        degraded = MissingValuesInjector().apply(clean_classification, 0.3, seed=1)
        total_cells = sum(clean_classification.n_rows for _ in clean_classification.feature_columns())
        missing = sum(c.n_missing() for c in degraded.feature_columns())
        assert missing / total_cells == pytest.approx(0.3, abs=0.07)
        # target untouched
        assert degraded["target"].n_missing() == 0

    def test_missing_values_restricted_to_columns(self, clean_classification):
        degraded = MissingValuesInjector(columns=["num_0"]).apply(clean_classification, 0.5, seed=2)
        assert degraded["num_0"].n_missing() > 0
        assert degraded["num_1"].n_missing() == 0

    def test_noise_changes_values_not_count(self, clean_classification):
        noisy = NoiseInjector().apply(clean_classification, 0.5, seed=3)
        assert noisy.n_rows == clean_classification.n_rows
        changed = sum(
            1
            for a, b in zip(clean_classification["num_0"].tolist(), noisy["num_0"].tolist())
            if a != b
        )
        assert changed > 0

    def test_class_noise_flips_labels(self, clean_classification):
        flipped = ClassNoiseInjector().apply(clean_classification, 0.3, seed=4)
        differences = sum(
            1 for a, b in zip(clean_classification["target"].tolist(), flipped["target"].tolist()) if a != b
        )
        assert differences / clean_classification.n_rows == pytest.approx(0.3, abs=0.1)

    def test_class_noise_requires_two_classes(self):
        single = Dataset.from_dict({"x": [1.0, 2.0], "target": ["a", "a"]}).set_target("target")
        with pytest.raises(ExperimentError):
            ClassNoiseInjector().apply(single, 0.5)

    def test_duplicates_extend_rows(self, clean_classification):
        duplicated = DuplicateInjector().apply(clean_classification, 0.2, seed=5)
        assert duplicated.n_rows == pytest.approx(clean_classification.n_rows * 1.2, abs=1)

    def test_fuzzy_duplicates_are_not_exact(self, clean_classification):
        fuzzy = DuplicateInjector(fuzzy=True).apply(clean_classification, 0.2, seed=6)
        rows = [tuple(str(v) for v in row.values()) for row in fuzzy.iter_rows()]
        assert len(set(rows)) > clean_classification.n_rows * 0.99

    def test_imbalance_shrinks_minority(self, clean_classification):
        skewed = ImbalanceInjector().apply(clean_classification, 0.8, seed=7)
        counts = skewed["target"].value_counts()
        assert max(counts.values()) / min(counts.values()) > 2.5
        assert skewed.n_rows < clean_classification.n_rows

    def test_imbalance_requires_two_classes(self):
        single = Dataset.from_dict({"x": [1.0, 2.0], "target": ["a", "a"]}).set_target("target")
        with pytest.raises(ExperimentError):
            ImbalanceInjector().apply(single, 0.5)

    def test_correlated_attributes_are_really_correlated(self, clean_classification):
        correlated = CorrelatedAttributesInjector().apply(clean_classification, 1.0, seed=8)
        added = [name for name in correlated.column_names if "redundant" in name]
        assert added
        first = added[0]
        source = first.split("_redundant_")[0]
        assert abs(pearson(correlated[source].values, correlated[first].values)) > 0.9

    def test_correlated_requires_numeric_features(self, transactions_dataset):
        with pytest.raises(ExperimentError):
            CorrelatedAttributesInjector().apply(transactions_dataset, 0.5)

    def test_irrelevant_attributes_added(self, clean_classification):
        wide = IrrelevantAttributesInjector(max_added=20).apply(clean_classification, 1.0, seed=9)
        assert wide.n_columns == clean_classification.n_columns + 20
        assert any(name.startswith("irrelevant_cat_") for name in wide.column_names)
        assert any(name.startswith("irrelevant_num_") for name in wide.column_names)

    def test_outliers_added(self, clean_classification):
        spiked = OutlierInjector(magnitude=10.0).apply(clean_classification, 1.0, seed=10)
        original_max = max(abs(v) for v in clean_classification["num_0"].tolist())
        spiked_max = max(abs(v) for v in spiked["num_0"].tolist())
        assert spiked_max > original_max * 2

    def test_inconsistency_corrupts_spellings(self, budget_dataset):
        corrupted = InconsistencyInjector().apply(budget_dataset, 1.0, seed=11)
        original_levels = set(budget_dataset["district"].distinct())
        corrupted_levels = set(corrupted["district"].distinct())
        assert len(corrupted_levels) > len(original_levels)


class TestApplyInjections:
    def test_multiple_injections_compose(self, clean_classification):
        degraded = apply_injections(clean_classification, {"completeness": 0.2, "dimensionality": 0.5}, seed=1)
        assert degraded.n_columns > clean_classification.n_columns
        assert sum(c.n_missing() for c in degraded.columns) > 0

    def test_deterministic_order(self, clean_classification):
        a = apply_injections(clean_classification, {"completeness": 0.2, "accuracy": 0.2}, seed=3)
        b = apply_injections(clean_classification, {"accuracy": 0.2, "completeness": 0.2}, seed=3)
        assert a == b

    def test_unknown_injector_rejected(self, clean_classification):
        with pytest.raises(ExperimentError):
            apply_injections(clean_classification, {"entropy_of_the_universe": 0.5})

    def test_empty_mapping_is_identity(self, clean_classification):
        assert apply_injections(clean_classification, {}) == clean_classification
