"""Property-based tests (hypothesis) for the dataset substrate and IO round trips."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.tabular.dataset import Column, ColumnType, Dataset, infer_column_type, is_missing_value
from repro.tabular.io_csv import read_csv_text, write_csv_text
from repro.tabular.io_json import read_json_records, write_json_records
from repro.tabular.transforms import distinct, normalize, sort_by

# -- strategies --------------------------------------------------------------

_cell_numbers = st.one_of(
    st.none(),
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)
_cell_categories = st.one_of(st.none(), st.sampled_from(["north", "south", "east", "west", "centre"]))


@st.composite
def mixed_datasets(draw, min_rows: int = 2, max_rows: int = 30):
    """Datasets with one numeric and one categorical column plus a row id."""
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    numbers = draw(st.lists(_cell_numbers, min_size=n, max_size=n))
    categories = draw(st.lists(_cell_categories, min_size=n, max_size=n))
    return Dataset(
        [
            Column("row_id", [f"r{i}" for i in range(n)], ctype=ColumnType.STRING, role="identifier"),
            Column("value", numbers, ctype=ColumnType.NUMERIC),
            Column("zone", categories, ctype=ColumnType.CATEGORICAL),
        ],
        name="generated",
    )


# -- properties ---------------------------------------------------------------


@given(mixed_datasets())
@settings(max_examples=40, deadline=None)
def test_row_column_consistency(dataset):
    """Every column reports the same length and row access matches column access."""
    assert all(len(column) == dataset.n_rows for column in dataset.columns)
    for i in range(dataset.n_rows):
        row = dataset.row(i)
        for name in dataset.column_names:
            a, b = row[name], dataset[name][i]
            assert (is_missing_value(a) and is_missing_value(b)) or a == b


@given(mixed_datasets())
@settings(max_examples=40, deadline=None)
def test_take_preserves_values(dataset):
    indices = list(range(dataset.n_rows))[::-1]
    reversed_dataset = dataset.take(indices)
    assert reversed_dataset.n_rows == dataset.n_rows
    assert reversed_dataset.take(indices) == dataset


@given(mixed_datasets(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_shuffle_is_permutation(dataset, seed):
    shuffled = dataset.shuffle(seed=seed)
    assert sorted(shuffled["row_id"].tolist()) == sorted(dataset["row_id"].tolist())


@given(mixed_datasets())
@settings(max_examples=30, deadline=None)
def test_concat_lengths_add_up(dataset):
    doubled = dataset.concat(dataset)
    assert doubled.n_rows == 2 * dataset.n_rows
    assert doubled.column_names == dataset.column_names


@given(mixed_datasets())
@settings(max_examples=30, deadline=None)
def test_distinct_idempotent(dataset):
    once = distinct(dataset)
    twice = distinct(once)
    assert once == twice
    assert once.n_rows <= dataset.n_rows


@given(mixed_datasets())
@settings(max_examples=30, deadline=None)
def test_sort_is_stable_permutation(dataset):
    ordered = sort_by(dataset, ["value"])
    assert sorted(ordered["row_id"].tolist()) == sorted(dataset["row_id"].tolist())
    present = [v for v in ordered["value"].tolist() if not is_missing_value(v)]
    assert present == sorted(present)


@given(mixed_datasets())
@settings(max_examples=30, deadline=None)
def test_minmax_normalisation_bounds(dataset):
    scaled = normalize(dataset, columns=["value"], method="minmax")
    present = [v for v in scaled["value"].tolist() if not is_missing_value(v)]
    assert all(-1e-9 <= v <= 1.0 + 1e-9 for v in present)
    # missing cells stay missing
    assert scaled["value"].n_missing() == dataset["value"].n_missing()


@given(mixed_datasets())
@settings(max_examples=25, deadline=None)
def test_csv_roundtrip_preserves_shape_and_numbers(dataset):
    text = write_csv_text(dataset)
    loaded = read_csv_text(text, ctypes={"value": ColumnType.NUMERIC, "zone": ColumnType.CATEGORICAL})
    assert loaded.n_rows == dataset.n_rows
    assert loaded.column_names == dataset.column_names
    for original, reloaded in zip(dataset["value"].tolist(), loaded["value"].tolist()):
        if is_missing_value(original):
            assert is_missing_value(reloaded)
        else:
            assert math.isclose(float(original), float(reloaded), rel_tol=1e-9, abs_tol=1e-9)


@given(mixed_datasets())
@settings(max_examples=25, deadline=None)
def test_json_roundtrip_preserves_missingness(dataset):
    loaded = read_json_records(write_json_records(dataset))
    assert loaded.n_rows == dataset.n_rows
    for name in dataset.column_names:
        assert loaded[name].n_missing() == dataset[name].n_missing()


@given(st.lists(_cell_numbers, min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_inferred_type_always_valid(values):
    assert infer_column_type(values) in ColumnType.ALL
