"""Unit tests for Apriori, clustering, PCA and the regression tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_clustered_dataset, make_regression_dataset, make_transactions_dataset
from repro.exceptions import MiningError
from repro.mining import (
    AgglomerativeClusterer,
    Apriori,
    KMeansClusterer,
    PCATransformer,
    RegressionTreeLearner,
    dataset_to_transactions,
    mean_squared_error,
    r2_score,
    silhouette_score,
)
from repro.mining.preprocessing import DatasetEncoder
from repro.tabular.dataset import ColumnRole, Dataset


class TestApriori:
    @pytest.fixture(scope="class")
    def transactions(self):
        return dataset_to_transactions(make_transactions_dataset(n_rows=300, seed=2))

    def test_parameter_validation(self):
        with pytest.raises(MiningError):
            Apriori(min_support=0.0)
        with pytest.raises(MiningError):
            Apriori(min_confidence=1.5)

    def test_rules_before_fit_rejected(self):
        with pytest.raises(MiningError):
            Apriori().rules()

    def test_empty_transactions_rejected(self):
        with pytest.raises(MiningError):
            Apriori().fit([])

    def test_supports_are_valid_and_antimonotone(self, transactions):
        apriori = Apriori(min_support=0.05, min_confidence=0.5).fit(transactions)
        for itemset, support in apriori.itemsets_.items():
            assert 0.05 <= support <= 1.0
            # every subset of a frequent itemset is frequent with >= support
            for item in itemset:
                subset = itemset - {item}
                if subset:
                    assert apriori.itemsets_[subset] >= support

    def test_planted_rule_recovered(self, transactions):
        apriori = Apriori(min_support=0.03, min_confidence=0.6).fit(transactions)
        rules = apriori.rules()
        planted = [
            rule
            for rule in rules
            if {"district=centre", "service=library"} <= rule.antecedent and "satisfaction=high" in rule.consequent
        ]
        assert planted, "the planted centre+library -> high satisfaction rule should be found"
        assert planted[0].confidence > 0.6
        assert planted[0].lift > 1.5

    def test_rule_sorting_and_text(self, transactions):
        rules = Apriori(min_support=0.05, min_confidence=0.5).fit(transactions).rules()
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)
        assert "=>" in rules[0].as_text()
        assert set(rules[0].as_dict()) >= {"antecedent", "consequent", "support", "confidence", "lift"}

    def test_frequent_itemsets_filter(self, transactions):
        apriori = Apriori(min_support=0.05).fit(transactions)
        pairs = apriori.frequent_itemsets(min_size=2)
        assert all(len(itemset) >= 2 for itemset, _ in pairs)

    def test_dataset_to_transactions_discretises_numerics(self, budget_dataset):
        transactions = dataset_to_transactions(budget_dataset, columns=["budgeted", "district"])
        assert all(any(item.startswith("budgeted=") for item in t) for t in transactions if t)

    def test_dataset_to_transactions_skips_identifiers(self, budget_dataset):
        transactions = dataset_to_transactions(budget_dataset)
        assert not any(item.startswith("line_id=") for t in transactions for item in t)


class TestKMeans:
    def test_recovers_blob_structure(self, clustered_dataset):
        clusterer = KMeansClusterer(k=3, seed=1)
        labels = clusterer.fit_predict(clustered_dataset)
        assert len(set(labels)) == 3
        matrix = DatasetEncoder().fit_transform(clustered_dataset)
        assert silhouette_score(matrix, labels) > 0.4

    def test_inertia_decreases_with_more_clusters(self, clustered_dataset):
        inertia_2 = KMeansClusterer(k=2, seed=0).fit(clustered_dataset).inertia_
        inertia_5 = KMeansClusterer(k=5, seed=0).fit(clustered_dataset).inertia_
        assert inertia_5 < inertia_2

    def test_predict_assigns_nearest_centroid(self, clustered_dataset):
        clusterer = KMeansClusterer(k=3, seed=3).fit(clustered_dataset)
        assignments = clusterer.predict(clustered_dataset)
        assert assignments == clusterer.labels_

    def test_validation(self, clustered_dataset):
        with pytest.raises(MiningError):
            KMeansClusterer(k=0)
        with pytest.raises(MiningError):
            KMeansClusterer(k=500).fit(clustered_dataset)
        with pytest.raises(MiningError):
            KMeansClusterer(k=2).predict(clustered_dataset)

    def test_reproducible_with_seed(self, clustered_dataset):
        a = KMeansClusterer(k=3, seed=7).fit_predict(clustered_dataset)
        b = KMeansClusterer(k=3, seed=7).fit_predict(clustered_dataset)
        assert a == b


class TestAgglomerative:
    def test_cluster_count(self, clustered_dataset):
        small = clustered_dataset.head(40)
        clusterer = AgglomerativeClusterer(n_clusters=3)
        labels = clusterer.fit_predict(small)
        assert len(set(labels)) == 3
        assert len(labels) == small.n_rows
        assert len(clusterer.merge_history_) == small.n_rows - 3

    def test_linkage_options(self, clustered_dataset):
        small = clustered_dataset.head(30)
        for linkage in ("single", "complete", "average"):
            labels = AgglomerativeClusterer(n_clusters=2, linkage=linkage).fit_predict(small)
            assert len(set(labels)) == 2

    def test_validation(self, clustered_dataset):
        with pytest.raises(MiningError):
            AgglomerativeClusterer(n_clusters=0)
        with pytest.raises(MiningError):
            AgglomerativeClusterer(linkage="ward")
        with pytest.raises(MiningError):
            AgglomerativeClusterer(n_clusters=100).fit(clustered_dataset.head(10))


class TestPCA:
    def test_component_count_and_variance(self, clean_classification):
        pca = PCATransformer(n_components=2).fit(clean_classification)
        assert pca.n_components_kept() == 2
        assert pca.explained_variance_ratio_.shape == (2,)
        assert np.all(np.diff(pca.explained_variance_ratio_) <= 1e-12)

    def test_explained_variance_target(self, clean_classification):
        pca = PCATransformer(explained_variance=0.99).fit(clean_classification)
        assert pca.explained_variance_ratio_.sum() >= 0.5

    def test_transform_preserves_non_features(self, clean_classification):
        reduced = PCATransformer(n_components=2).fit_transform(clean_classification)
        assert reduced.target_column().name == "target"
        assert reduced.n_rows == clean_classification.n_rows
        assert [c.name for c in reduced.feature_columns()] == ["pc1", "pc2"]

    def test_validation(self, clean_classification):
        with pytest.raises(MiningError):
            PCATransformer(n_components=0)
        with pytest.raises(MiningError):
            PCATransformer(explained_variance=0.0)
        with pytest.raises(MiningError):
            PCATransformer().transform(clean_classification)


class TestRegressionTree:
    def test_fits_nonlinear_signal(self):
        dataset = make_regression_dataset(n_rows=300, noise=0.2, seed=1)
        learner = RegressionTreeLearner(max_depth=6).fit(dataset)
        predictions = learner.predict(dataset)
        truth = dataset["target"].tolist()
        assert r2_score(truth, predictions) > 0.5
        assert mean_squared_error(truth, predictions) < np.var(truth)

    def test_used_features_subset(self):
        dataset = make_regression_dataset(n_rows=200, seed=3)
        learner = RegressionTreeLearner().fit(dataset)
        assert set(learner.used_features()) <= set(dataset.feature_names())

    def test_explicit_target_argument(self, budget_dataset):
        learner = RegressionTreeLearner(max_depth=4).fit(
            budget_dataset.set_role("overrun", ColumnRole.METADATA), target="execution_rate"
        )
        predictions = learner.predict(budget_dataset)
        assert len(predictions) == budget_dataset.n_rows

    def test_validation(self, budget_dataset):
        with pytest.raises(MiningError):
            RegressionTreeLearner().fit(budget_dataset, target="district")
        with pytest.raises(MiningError):
            RegressionTreeLearner().predict(budget_dataset)
