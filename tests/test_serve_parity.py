"""Concurrency-parity suite for the serving tier (repro.serve).

The serving contract: every HTTP response body is bit-identical (float
repr included) to ``encode_response(evaluate(endpoint, payload, params))``
— the direct library call — on the snapshot named by the response's
fingerprint header.  This suite enforces that contract cold, hot (cache
hits), under ≥8 threads of mixed-endpoint contention, and across an
atomic snapshot swap performed mid-load, where zero torn or stale
responses are tolerated.
"""

from __future__ import annotations

import json
import random
import threading
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.datasets import service_requests
from repro.datasets.civic import civic_lod_graph
from repro.parallel import effective_n_jobs, thread_sequential
from repro.serve import (
    CACHE_HEADER,
    FINGERPRINT_HEADER,
    create_server,
    encode_response,
    evaluate,
    fingerprint_path,
)
from repro.store import open_dataset, open_graph

RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

#: The mixed query workload: every endpoint, several parameter shapes.
QUERIES: list[tuple[str, dict]] = [
    ("/profile", {}),
    ("/profile", {"criteria": ["completeness", "balance", "duplication"]}),
    ("/advise", {"neighbours": 5}),
    ("/cube/aggregate", {
        "dimensions": ["district"],
        "measures": [{"column": "resolution_days", "aggregation": "mean"},
                     {"column": "resolution_days", "aggregation": "count", "name": "rows"}],
        "levels": ["district"],
    }),
    ("/cube/aggregate", {
        "dimensions": ["district"],
        "measures": [{"column": "resolution_days", "aggregation": "sum"}],
    }),
    ("/cube/pivot", {
        "dimensions": ["district", "topic"],
        "measures": [{"column": "resolution_days", "aggregation": "mean", "name": "avg_days"}],
        "row_level": "district", "column_level": "topic",
    }),
    ("/kpi", {"kpis": [{"name": "resolution", "column": "resolution_days",
                        "target": 14.0, "higher_is_better": False}]}),
    ("/kpi", {"kpis": [{"name": "resolution", "column": "resolution_days",
                        "target": 14.0, "higher_is_better": False}],
              "level": "district"}),
    ("/lod/select", {"patterns": [["?s", RDF_TYPE, "?t"]],
                     "order_by": "s", "limit": 10}),
    ("/lod/select", {"patterns": [["?s", RDF_TYPE, "?t"]],
                     "variables": ["t"], "distinct": True}),
    ("/lod/ask", {"patterns": [["?s", RDF_TYPE, "?t"]]}),
]

#: Dataset-only subset used while hammering across a snapshot swap.
SWAP_QUERIES: list[tuple[str, dict]] = [
    ("/profile", {"criteria": ["completeness", "balance"]}),
    ("/cube/aggregate", {
        "dimensions": ["district"],
        "measures": [{"column": "resolution_days", "aggregation": "mean"}],
        "levels": ["district"],
    }),
    ("/kpi", {"kpis": [{"name": "resolution", "column": "resolution_days",
                        "target": 14.0, "higher_is_better": False}]}),
]


def _get(base: str, path: str, params: dict | None = None):
    url = base + path
    if params is not None:
        url += "?q=" + quote(json.dumps(params))
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, dict(response.headers), response.read()


def _post(base: str, path: str, params: dict):
    request = urllib.request.Request(
        base + path, data=json.dumps(params).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, dict(response.headers), response.read()


@pytest.fixture(scope="module")
def store_paths(tmp_path_factory):
    """Saved snapshot files: dataset A, a one-seed-different dataset B, a graph."""
    work = tmp_path_factory.mktemp("serve-stores")
    dataset_a = service_requests(n_rows=120, seed=3)
    dataset_b = service_requests(n_rows=120, seed=4)
    graph = civic_lod_graph(service_requests(n_rows=40, seed=5), entity_class="ServiceRequest")
    return {
        "dataset_a": dataset_a.save(work / "requests.rps"),
        "dataset_b": dataset_b.save(work / "requests_v2.rps"),
        "graph": graph.save(work / "civic.rps"),
    }


@pytest.fixture(scope="module")
def expected(store_paths, small_knowledge_base):
    """Direct-library expected bytes for every query, per snapshot file.

    ``expected[file_key][(path, canonical-params)]`` are the bytes the
    server must produce for that query on that snapshot — computed on an
    independently opened payload of the same file, which *is* the direct
    library call the ISSUE's parity requirement names.
    """
    payloads = {
        "dataset_a": open_dataset(store_paths["dataset_a"]),
        "dataset_b": open_dataset(store_paths["dataset_b"]),
        "graph": open_graph(store_paths["graph"]),
    }
    table: dict[str, dict] = {key: {} for key in payloads}
    for path, params in QUERIES + SWAP_QUERIES:
        for key in ("dataset_a", "dataset_b") if not path.startswith("/lod") else ("graph",):
            table[key][(path, json.dumps(params, sort_keys=True))] = encode_response(
                evaluate(path, payloads[key], params, knowledge_base=small_knowledge_base)
            )
    yield table
    for payload in payloads.values():
        payload.close()


@pytest.fixture()
def server(store_paths, small_knowledge_base):
    """A live threaded server over dataset A + the graph, torn down after."""
    srv = create_server(
        stores=[store_paths["dataset_a"]],
        graphs=[store_paths["graph"]],
        knowledge_base=small_knowledge_base,
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=10)
    srv.close()


def _expected_key(path: str, params: dict) -> tuple[str, str]:
    return (path, json.dumps(params, sort_keys=True))


def _file_key(path: str) -> str:
    return "graph" if path.startswith("/lod") else "dataset_a"


class TestColdAndHotParity:
    def test_every_endpoint_cold_bit_identical(self, server, expected, store_paths):
        """First-touch (cache-miss) responses equal the direct library call."""
        fingerprints = {
            "dataset_a": fingerprint_path(store_paths["dataset_a"]),
            "graph": fingerprint_path(store_paths["graph"]),
        }
        for path, params in QUERIES:
            status, headers, body = _post(server.url, path, params)
            assert status == 200
            assert headers[CACHE_HEADER] == "miss"
            key = _file_key(path)
            assert headers[FINGERPRINT_HEADER] == fingerprints[key]
            assert body == expected[key][_expected_key(path, params)], path

    def test_hot_cache_replays_identical_bytes(self, server, expected):
        """The second identical request is a hit with byte-identical body."""
        for path, params in QUERIES:
            _, h1, b1 = _post(server.url, path, params)
            _, h2, b2 = _post(server.url, path, params)
            assert h1[CACHE_HEADER] == "miss"
            assert h2[CACHE_HEADER] == "hit"
            assert b1 == b2 == expected[_file_key(path)][_expected_key(path, params)]

    def test_get_and_post_share_one_cache_entry(self, server):
        """GET ?q= and POST body canonicalise to the same key and bytes."""
        path, params = QUERIES[3]
        _, h1, b1 = _get(server.url, path, params)
        _, h2, b2 = _post(server.url, path, params)
        assert h2[CACHE_HEADER] == "hit"
        assert b1 == b2

    def test_spelling_differences_share_one_cache_entry(self, server):
        """Key order in the query JSON does not defeat canonicalisation."""
        params = {"criteria": ["completeness", "balance"], "dataset": "requests"}
        reordered = {"dataset": "requests", "criteria": ["completeness", "balance"]}
        _, h1, b1 = _post(server.url, "/profile", params)
        _, h2, b2 = _post(server.url, "/profile", reordered)
        assert h2[CACHE_HEADER] == "hit"
        assert b1 == b2


class TestConcurrentParity:
    N_THREADS = 8
    ITERATIONS = 3

    def test_mixed_workload_under_contention(self, server, expected):
        """≥8 threads, shuffled mixed workload: every response bit-identical."""
        failures: list[str] = []
        seen_flags: set[str] = set()
        lock = threading.Lock()

        def hammer(worker: int) -> None:
            rng = random.Random(worker)
            for _ in range(self.ITERATIONS):
                workload = QUERIES[:]
                rng.shuffle(workload)
                for path, params in workload:
                    send = _get if rng.random() < 0.5 else _post
                    try:
                        status, headers, body = send(server.url, path, params)
                    except urllib.error.HTTPError as exc:  # pragma: no cover - failure path
                        with lock:
                            failures.append(f"{path}: HTTP {exc.code}")
                        continue
                    want = expected[_file_key(path)][_expected_key(path, params)]
                    with lock:
                        seen_flags.add(headers[CACHE_HEADER])
                        if status != 200:
                            failures.append(f"{path}: status {status}")
                        elif body != want:
                            failures.append(f"{path}: body diverged from the direct call")

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[:5]
        assert seen_flags == {"hit", "miss"}, "contended run should exercise both cache paths"


class TestSnapshotSwap:
    N_THREADS = 8

    def test_swap_under_sustained_load_no_torn_no_stale(self, server, expected, store_paths):
        """A mid-flight /reload to different content never tears a response.

        Every response observed during the swap must be bit-identical to
        the direct library call on the snapshot its fingerprint header
        names (old or new — nothing in between), and once the swap has
        been acknowledged every later response serves the new content.
        """
        fingerprint_a = fingerprint_path(store_paths["dataset_a"])
        fingerprint_b = fingerprint_path(store_paths["dataset_b"])
        by_fingerprint = {
            fingerprint_a: {key: expected["dataset_a"][key]
                            for key in (_expected_key(p, q) for p, q in SWAP_QUERIES)},
            fingerprint_b: {key: expected["dataset_b"][key]
                            for key in (_expected_key(p, q) for p, q in SWAP_QUERIES)},
        }
        failures: list[str] = []
        lock = threading.Lock()
        stop = threading.Event()
        swapped = threading.Event()
        old_snapshot = server.app.registry.get("requests")

        def hammer(worker: int) -> None:
            rng = random.Random(100 + worker)
            while not stop.is_set():
                path, params = SWAP_QUERIES[rng.randrange(len(SWAP_QUERIES))]
                status, headers, body = _post(server.url, path, params)
                fingerprint = headers[FINGERPRINT_HEADER]
                with lock:
                    if status != 200:
                        failures.append(f"{path}: status {status}")
                    elif fingerprint not in by_fingerprint:
                        failures.append(f"{path}: unknown fingerprint {fingerprint}")
                    elif body != by_fingerprint[fingerprint][_expected_key(path, params)]:
                        failures.append(
                            f"{path}: TORN — body does not match snapshot {fingerprint}"
                        )
                    elif swapped.is_set() and fingerprint == fingerprint_a:
                        failures.append(f"{path}: STALE — old snapshot served after swap")

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        try:
            # Let the load build, then swap to the modified store mid-flight.
            for path, params in SWAP_QUERIES:
                _post(server.url, path, params)
            status, _, body = _post(
                server.url, "/reload",
                {"name": "requests", "path": str(store_paths["dataset_b"])},
            )
            assert status == 200
            reply = json.loads(body)
            assert reply["changed"] is True
            assert reply["snapshot"]["fingerprint"] == fingerprint_b
            assert reply["previous_fingerprint"] == fingerprint_a
            # In-flight requests that leased snapshot A before the publish may
            # legitimately still *complete* after it; what must never happen is
            # a *new* lease on A.  The swap barrier: one request after /reload
            # returned is guaranteed to lease B.
            _, headers, _ = _post(server.url, *SWAP_QUERIES[0])
            assert headers[FINGERPRINT_HEADER] == fingerprint_b
            swapped.set()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=120)
        assert not failures, failures[:5]

        # Publish-then-retire: the old snapshot's memory map is released
        # once the last in-flight lease drains (all workers joined above).
        assert old_snapshot.closed
        # And post-swap responses are hot-cacheable under the new fingerprint.
        _, h1, b1 = _post(server.url, *SWAP_QUERIES[1])
        _, h2, b2 = _post(server.url, *SWAP_QUERIES[1])
        assert h2[CACHE_HEADER] == "hit" and b1 == b2
        assert h2[FINGERPRINT_HEADER] == fingerprint_b

    def test_reload_same_content_is_a_no_op_for_the_cache(self, server, expected):
        """Reloading an unchanged file keeps the fingerprint and the cache."""
        path, params = SWAP_QUERIES[1]
        _, h1, _ = _post(server.url, path, params)
        status, _, body = _post(server.url, "/reload", {"name": "requests"})
        assert status == 200
        assert json.loads(body)["changed"] is False
        _, h2, b2 = _post(server.url, path, params)
        assert h2[CACHE_HEADER] == "hit"
        assert h2[FINGERPRINT_HEADER] == h1[FINGERPRINT_HEADER]
        assert b2 == expected["dataset_a"][_expected_key(path, params)]


class TestServerThreadsStaySequential:
    """The decided ``effective_n_jobs`` semantics inside server threads.

    Request-handler threads must never fork a worker pool (POSIX fork
    from a non-main thread can deadlock the child on locks held by other
    threads), so the server pins them to the sequential tier via
    :func:`repro.parallel.thread_sequential` — and since the parallel
    tier is bit-identical to the sequential one, responses are unchanged.
    """

    def test_thread_sequential_pins_this_thread_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "2")
        assert effective_n_jobs(None) == 2
        observed = {}
        with thread_sequential():
            assert effective_n_jobs(None) == 1
            assert effective_n_jobs(8) == 1

            def other_thread():
                observed["n"] = effective_n_jobs(None)

            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert observed["n"] == 2, "other threads keep their n_jobs semantics"
        assert effective_n_jobs(None) == 2, "the pin ends with the block"

    def test_thread_sequential_is_reentrant(self):
        with thread_sequential():
            with thread_sequential():
                assert effective_n_jobs(4) == 1
            assert effective_n_jobs(4) == 1, "inner exit must not clear the outer pin"
        assert effective_n_jobs(4) == 4

    def test_parallel_eligible_profile_through_the_server(
        self, server, expected, monkeypatch
    ):
        """Regression: REPRO_N_JOBS=2 + a full profile request must not
        fork mid-request — the handler thread answers sequentially, with
        bytes identical to the direct library call."""
        monkeypatch.setenv("REPRO_N_JOBS", "2")
        path, params = QUERIES[0]  # full 8-criterion profile: parallel-eligible
        status, headers, body = _post(server.url, path, params)
        assert status == 200
        assert body == expected["dataset_a"][_expected_key(path, params)]
        # And again hot: the cached bytes are the same bytes.
        _, headers, hot = _post(server.url, path, params)
        assert headers[CACHE_HEADER] == "hit"
        assert hot == body
