"""Unit tests for repro.tabular.dataset (Column, Dataset, type inference)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.tabular.dataset import (
    Column,
    ColumnRole,
    ColumnType,
    Dataset,
    infer_column_type,
    is_missing_value,
)


class TestMissingValues:
    def test_none_is_missing(self):
        assert is_missing_value(None)

    def test_nan_is_missing(self):
        assert is_missing_value(float("nan"))
        assert is_missing_value(np.nan)

    def test_regular_values_are_not_missing(self):
        assert not is_missing_value(0)
        assert not is_missing_value("")
        assert not is_missing_value(False)
        assert not is_missing_value("text")


class TestTypeInference:
    def test_numeric_inference(self):
        assert infer_column_type([1, 2.5, "3"]) == ColumnType.NUMERIC

    def test_boolean_inference(self):
        assert infer_column_type([True, False, "yes", "no"]) == ColumnType.BOOLEAN

    def test_datetime_inference(self):
        assert infer_column_type(["2020-01-01", "2021-12-31"]) == ColumnType.DATETIME

    def test_categorical_inference(self):
        assert infer_column_type(["a", "b", "a", "c"] * 10) == ColumnType.CATEGORICAL

    def test_string_inference_for_high_cardinality(self):
        values = [f"unique-text-{i}" for i in range(200)]
        assert infer_column_type(values) == ColumnType.STRING

    def test_all_missing_defaults_to_string(self):
        assert infer_column_type([None, None]) == ColumnType.STRING


class TestColumn:
    def test_numeric_column_coerces_strings(self):
        column = Column("x", ["1", "2.5", None])
        assert column.ctype == ColumnType.NUMERIC
        assert column[0] == 1.0
        assert math.isnan(column[2])

    def test_boolean_column_coercion(self):
        column = Column("flag", ["yes", "no", True], ctype=ColumnType.BOOLEAN)
        assert column.tolist() == [True, False, True]

    def test_missing_mask_and_counts(self):
        column = Column("x", [1.0, None, 3.0])
        assert column.missing_mask().tolist() == [False, True, False]
        assert column.n_missing() == 1
        assert column.non_missing() == [1.0, 3.0]

    def test_distinct_preserves_first_seen_order(self):
        column = Column("c", ["b", "a", "b", "c"], ctype=ColumnType.CATEGORICAL)
        assert column.distinct() == ["b", "a", "c"]

    def test_value_counts(self):
        column = Column("c", ["a", "a", "b", None], ctype=ColumnType.CATEGORICAL)
        assert column.value_counts() == {"a": 2, "b": 1}

    def test_invalid_role_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", [1], role="nonsense")

    def test_invalid_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", [1], ctype="imaginary")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", [1])

    def test_take_and_copy_are_independent(self):
        column = Column("x", [1.0, 2.0, 3.0])
        taken = column.take([2, 0])
        assert taken.tolist() == [3.0, 1.0]
        clone = column.copy()
        clone.values[0] = 99.0
        assert column[0] == 1.0

    def test_equality_handles_missing(self):
        a = Column("x", [1.0, None])
        b = Column("x", [1.0, None])
        assert a == b

    def test_with_values_keeps_metadata(self):
        column = Column("x", [1.0, 2.0], role=ColumnRole.TARGET)
        replaced = column.with_values([5, 6])
        assert replaced.role == ColumnRole.TARGET
        assert replaced.ctype == ColumnType.NUMERIC


class TestDatasetConstruction:
    def test_from_rows_preserves_column_order(self):
        ds = Dataset.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert ds.column_names == ["a", "b"]
        assert ds.shape == (2, 2)

    def test_from_rows_fills_missing_keys(self):
        ds = Dataset.from_rows([{"a": 1}, {"a": 2, "b": "x"}])
        assert is_missing_value(ds["b"][0])

    def test_from_dict(self):
        ds = Dataset.from_dict({"a": [1, 2], "b": ["x", "y"]})
        assert ds.n_rows == 2

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Dataset([Column("a", [1, 2]), Column("b", [1])])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Dataset([Column("a", [1]), Column("a", [2])])

    def test_empty_dataset_rejected(self):
        with pytest.raises(SchemaError):
            Dataset([])
        with pytest.raises(SchemaError):
            Dataset.from_rows([])


class TestDatasetAccess:
    def test_row_access(self, tiny_dataset):
        row = tiny_dataset.row(0)
        assert row["id"] == "r1"
        assert row["amount"] == 10.0

    def test_row_out_of_range(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.row(99)

    def test_unknown_column(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset["nope"]

    def test_to_rows_roundtrip(self, tiny_dataset):
        rebuilt = Dataset.from_rows(
            tiny_dataset.to_rows(),
            ctypes={c.name: c.ctype for c in tiny_dataset.columns},
            roles={c.name: c.role for c in tiny_dataset.columns},
        )
        assert rebuilt == tiny_dataset

    def test_summary_reports_missing_and_distinct(self, tiny_dataset):
        summary = tiny_dataset.summary()
        assert summary["amount"]["n_missing"] == 1
        assert summary["district"]["n_distinct"] == 2


class TestDatasetManipulation:
    def test_add_and_drop_column(self, tiny_dataset):
        extended = tiny_dataset.add_column(Column("extra", [1, 2, 3, 4, 5]))
        assert "extra" in extended
        reduced = extended.drop_columns(["extra"])
        assert "extra" not in reduced
        # original untouched
        assert "extra" not in tiny_dataset

    def test_add_duplicate_column_rejected(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.add_column(Column("amount", [0, 0, 0, 0, 0]))

    def test_add_wrong_length_rejected(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.add_column(Column("extra", [1, 2]))

    def test_drop_unknown_rejected(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.drop_columns(["ghost"])

    def test_select_columns_order(self, tiny_dataset):
        selected = tiny_dataset.select_columns(["label", "amount"])
        assert selected.column_names == ["label", "amount"]

    def test_rename_column(self, tiny_dataset):
        renamed = tiny_dataset.rename_column("amount", "value")
        assert "value" in renamed and "amount" not in renamed

    def test_rename_collision_rejected(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.rename_column("amount", "district")

    def test_replace_column(self, tiny_dataset):
        replaced = tiny_dataset.replace_column(Column("amount", [1, 1, 1, 1, 1]))
        assert replaced["amount"].tolist() == [1.0] * 5

    def test_set_target_switches_roles(self, tiny_dataset):
        switched = tiny_dataset.set_target("district")
        assert switched.target_column().name == "district"
        assert switched["label"].role == ColumnRole.FEATURE

    def test_set_role_validates(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.set_role("amount", "invalid")

    def test_target_column_requires_exactly_one(self, tiny_dataset):
        no_target = tiny_dataset.set_role("label", ColumnRole.FEATURE)
        with pytest.raises(SchemaError):
            no_target.target_column()


class TestDatasetRows:
    def test_take_and_head(self, tiny_dataset):
        head = tiny_dataset.head(2)
        assert head.n_rows == 2
        taken = tiny_dataset.take([4, 0])
        assert taken["id"].tolist() == ["r5", "r1"]

    def test_filter(self, tiny_dataset):
        filtered = tiny_dataset.filter(lambda row: row["label"] == "a")
        assert filtered.n_rows == 3

    def test_filter_removing_everything_rejected(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.filter(lambda row: False)

    def test_sample_reproducible(self, tiny_dataset):
        a = tiny_dataset.sample(3, seed=1)
        b = tiny_dataset.sample(3, seed=1)
        assert a.to_rows() == b.to_rows()

    def test_sample_too_large_rejected(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.sample(50)

    def test_sample_with_replacement(self, tiny_dataset):
        sampled = tiny_dataset.sample(10, seed=0, replace=True)
        assert sampled.n_rows == 10

    def test_shuffle_is_permutation(self, tiny_dataset):
        shuffled = tiny_dataset.shuffle(seed=3)
        assert sorted(shuffled["id"].tolist()) == sorted(tiny_dataset["id"].tolist())

    def test_concat(self, tiny_dataset):
        doubled = tiny_dataset.concat(tiny_dataset)
        assert doubled.n_rows == 10

    def test_concat_mismatched_rejected(self, tiny_dataset):
        other = tiny_dataset.drop_columns(["active"])
        with pytest.raises(SchemaError):
            tiny_dataset.concat(other)

    def test_copy_is_deep(self, tiny_dataset):
        clone = tiny_dataset.copy()
        clone["amount"].values[0] = 999.0
        assert tiny_dataset["amount"][0] == 10.0


class TestNumericMatrix:
    def test_numeric_matrix_shape(self, tiny_dataset):
        matrix = tiny_dataset.numeric_matrix()
        assert matrix.shape == (5, 1)

    def test_numeric_matrix_rejects_non_numeric(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.numeric_matrix(["district"])

    def test_feature_and_target_helpers(self, tiny_dataset):
        assert tiny_dataset.has_target()
        assert tiny_dataset.target_column().name == "label"
        assert "amount" in tiny_dataset.feature_names()
        assert "id" not in tiny_dataset.feature_names()
