"""Unit tests for the OpenBI front end: OLAP, reporting, KPIs, dashboards, sharing."""

from __future__ import annotations

import pytest

from repro.bi import (
    Cube,
    Dashboard,
    Dimension,
    KPI,
    Measure,
    Report,
    dataset_to_table_text,
    evaluate_kpis,
    share_cube_as_lod,
    share_recommendation_as_lod,
    share_report_as_lod,
)
from repro.core import Advisor
from repro.exceptions import OLAPError, ReproError
from repro.lod.vocabulary import OPENBI, QB
from repro.quality import measure_quality
from repro.tabular.dataset import Dataset


@pytest.fixture
def budget_cube(budget_dataset):
    return Cube(
        budget_dataset,
        dimensions=[
            Dimension("district", ("district",)),
            Dimension("category", ("category",)),
            Dimension("year", ("year",)),
        ],
        measures=[
            Measure("total_budgeted", "budgeted", "sum"),
            Measure("mean_rate", "execution_rate", "mean"),
        ],
    )


class TestCube:
    def test_construction_validation(self, budget_dataset):
        with pytest.raises(OLAPError):
            Cube(budget_dataset, [], [Measure("m", "budgeted")])
        with pytest.raises(OLAPError):
            Cube(budget_dataset, [Dimension("d", ("district",))], [])
        with pytest.raises(OLAPError):
            Cube(budget_dataset, [Dimension("d", ("ghost",))], [Measure("m", "budgeted")])
        with pytest.raises(OLAPError):
            Cube(budget_dataset, [Dimension("d", ("district",))], [Measure("m", "district")])
        with pytest.raises(OLAPError):
            Measure("m", "x", aggregation="geometric_mean")
        with pytest.raises(OLAPError):
            Dimension("d", ())

    def test_aggregate_by_level(self, budget_cube, budget_dataset):
        by_district = budget_cube.aggregate(["district"])
        assert by_district.n_rows == len(budget_dataset["district"].distinct())
        total = sum(by_district["total_budgeted"].tolist())
        assert total == pytest.approx(sum(budget_dataset["budgeted"].tolist()))

    def test_grand_total(self, budget_cube, budget_dataset):
        totals = budget_cube.aggregate()
        assert totals.n_rows == 1
        assert totals["total_budgeted"][0] == pytest.approx(sum(budget_dataset["budgeted"].tolist()))

    def test_rollup_and_drill_down(self, budget_cube):
        assert budget_cube.rollup("district").n_rows == budget_cube.drill_down("district").n_rows
        with pytest.raises(OLAPError):
            budget_cube.rollup("district", to_level="continent")
        with pytest.raises(OLAPError):
            budget_cube.rollup("galaxy")

    def test_slice(self, budget_cube):
        sliced = budget_cube.slice("category", "transport")
        assert set(sliced.dataset["category"].distinct()) == {"transport"}
        with pytest.raises(OLAPError):
            budget_cube.slice("ghost", "x")

    def test_dice(self, budget_cube):
        diced = budget_cube.dice({"district": ["centre", "north"], "category": ["transport", "health"]})
        assert set(diced.dataset["district"].distinct()) <= {"centre", "north"}
        assert set(diced.dataset["category"].distinct()) <= {"transport", "health"}

    def test_pivot(self, budget_cube, budget_dataset):
        pivoted = budget_cube.pivot("district", "year")
        assert pivoted.n_rows == len(budget_dataset["district"].distinct())
        assert any(name.startswith("year=") for name in pivoted.column_names)
        with pytest.raises(OLAPError):
            budget_cube.pivot("district", "year", measure_name="ghost")

    def test_measure_summary(self, budget_cube):
        summary = budget_cube.measure_summary()
        assert summary["total_budgeted"]["aggregated"] > 0
        assert summary["mean_rate"]["min"] <= summary["mean_rate"]["max"]

    def test_aggregate_unknown_level(self, budget_cube):
        with pytest.raises(OLAPError):
            budget_cube.aggregate(["galaxy"])


class TestReporting:
    def test_table_text_formats(self, tiny_dataset):
        for fmt in ("text", "markdown", "html"):
            rendered = dataset_to_table_text(tiny_dataset, fmt=fmt)
            assert "amount" in rendered
        with pytest.raises(ReproError):
            dataset_to_table_text(tiny_dataset, fmt="latex")

    def test_table_truncation(self, budget_dataset):
        rendered = dataset_to_table_text(budget_dataset, max_rows=5)
        assert "more rows" in rendered

    def test_report_rendering(self, tiny_dataset):
        report = (
            Report("Demo")
            .add_text("Introduction", "Some prose.")
            .add_table("Data", tiny_dataset)
            .add_key_values("Metrics", {"accuracy": 0.9, "rows": 5})
        )
        text = report.render("text")
        markdown = report.render("markdown")
        html = report.render("html")
        assert "Introduction" in text and "accuracy" in text
        assert markdown.startswith("# Demo") and "## Data" in markdown
        assert "<h1>Demo</h1>" in html and "<table>" in html
        with pytest.raises(ReproError):
            report.render("pdf")


class TestKPIs:
    def test_column_kpi(self, budget_dataset):
        kpi = KPI("mean rate", "execution_rate", target=0.5, higher_is_better=True)
        status = kpi.status(budget_dataset)
        assert status["status"] == "good"
        assert status["value"] > 0.5

    def test_callable_kpi_and_bad_status(self, budget_dataset):
        kpi = KPI(
            "overrun share",
            lambda ds: sum(1 for v in ds["overrun"].tolist() if str(v).lower() in {"yes", "true"}) / ds.n_rows,
            target=0.05,
            higher_is_better=False,
            tolerance=0.1,
        )
        assert kpi.status(budget_dataset)["status"] == "bad"

    def test_warning_band(self):
        ds = Dataset.from_dict({"x": [0.93, 0.93]})
        kpi = KPI("x", "x", target=1.0, higher_is_better=True, tolerance=0.1)
        assert kpi.status(ds)["status"] == "warning"

    def test_unknown_column_rejected(self, budget_dataset):
        with pytest.raises(ReproError):
            KPI("ghost", "ghost", target=1.0).value(budget_dataset)

    def test_evaluate_kpis(self, budget_dataset):
        statuses = evaluate_kpis([KPI("rate", "execution_rate", target=0.5)], budget_dataset)
        assert len(statuses) == 1
        with pytest.raises(ReproError):
            evaluate_kpis([], budget_dataset)


class TestDashboard:
    def test_full_dashboard(self, budget_dataset, budget_cube, small_knowledge_base):
        advisor = Advisor(small_knowledge_base)
        recommendation = advisor.advise(budget_dataset)
        dashboard = (
            Dashboard("City")
            .add_kpi_panel("KPIs", [KPI("rate", "execution_rate", target=0.5)], budget_dataset)
            .add_quality_panel("Quality", measure_quality(budget_dataset))
            .add_cube_panel("By district", budget_cube, ["district"])
            .add_recommendation_panel("Mining advice", recommendation)
            .add_table_panel("Sample", budget_dataset.head(3))
            .add_text_panel("Notes", "All open data, CC-BY.")
        )
        rendered = dashboard.render()
        assert rendered.startswith("# City")
        assert dashboard.panel_titles == ["KPIs", "Quality", "By district", "Mining advice", "Sample", "Notes"]
        assert "Recommended algorithm" in rendered
        report = dashboard.to_report()
        assert len(report.sections) == 6


class TestSharing:
    def test_share_cube(self, budget_cube):
        graph = share_cube_as_lod(budget_cube, ["district"])
        assert len(graph.subjects_of_type(QB.Observation)) == 6

    def test_share_report(self, tiny_dataset):
        report = Report("Shared").add_text("Intro", "x").add_table("Data", tiny_dataset)
        graph = share_report_as_lod(report)
        assert len(graph.subjects_of_type(OPENBI.ReportSection)) == 2

    def test_share_recommendation(self, budget_dataset, small_knowledge_base):
        recommendation = Advisor(small_knowledge_base).advise(budget_dataset)
        graph = share_recommendation_as_lod(recommendation)
        assert len(graph.subjects_of_type(OPENBI.Recommendation)) == 1
