"""Unit tests for entity linking, LOD tabulation and publishing helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.linker import EntityLinker, LinkRule, jaccard_similarity, levenshtein, normalise_string, string_similarity
from repro.lod.publish import publish_dataset, publish_patterns, publish_quality_profile, publish_recommendation
from repro.lod.tabulate import dimensionality_report, tabulate_entities
from repro.lod.terms import IRI, Literal
from repro.lod.vocabulary import DQV, Namespace, OPENBI, OWL, QB, RDF
from repro.quality import measure_quality

EX = Namespace("http://example.org/")


def _city_graph(suffix: str, names: list[str]) -> Graph:
    graph = Graph(f"http://example.org/graph/{suffix}")
    for i, name in enumerate(names):
        subject = EX[f"{suffix}/city{i}"]
        graph.add_resource(subject, rdf_type=EX.City, properties={EX.cityName: Literal(name), EX.rank: Literal(i)})
    return graph


class TestStringSimilarity:
    def test_normalise_string(self):
        assert normalise_string("  Alicante / Alacant ") == "alicante alacant"
        assert normalise_string("MÁLAGA") == "malaga"

    def test_levenshtein(self):
        assert levenshtein("abc", "abc") == 0
        assert levenshtein("abc", "abd") == 1
        assert levenshtein("", "xyz") == 3

    def test_jaccard(self):
        assert jaccard_similarity("city of alicante", "alicante city") == pytest.approx(2 / 3)
        assert jaccard_similarity("", "") == 1.0

    def test_string_similarity_bounds(self):
        assert string_similarity("Alicante", "alicante") == 1.0
        assert 0.0 <= string_similarity("Alicante", "Barcelona") < 0.7


class TestEntityLinker:
    def test_links_matching_names(self):
        left = _city_graph("a", ["Alicante", "Elche", "Torrevieja"])
        right = _city_graph("b", ["ALICANTE", "Elche ", "Orihuela"])
        linker = EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=0.95)
        links = linker.link(left, EX.City, right, EX.City)
        assert len(links) == 2
        assert all(link.score >= 0.95 for link in links)

    def test_materialise_adds_same_as(self):
        left = _city_graph("a", ["Alicante"])
        right = _city_graph("b", ["Alicante"])
        linker = EntityLinker([LinkRule(EX.cityName, EX.cityName)])
        links = linker.link(left, EX.City, right, EX.City)
        merged = left.copy()
        merged.merge(right)
        added = linker.materialise(merged, links)
        assert added == len(links) == 1
        assert next(merged.triples(None, OWL.sameAs, None), None) is not None

    def test_requires_rules_and_valid_threshold(self):
        with pytest.raises(LODError):
            EntityLinker([])
        with pytest.raises(LODError):
            EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=0.0)

    def test_score_pair_missing_property_is_zero(self):
        left = _city_graph("a", ["Alicante"])
        right = Graph()
        right.add_resource(EX["b/city0"], rdf_type=EX.City)
        linker = EntityLinker([LinkRule(EX.cityName, EX.cityName)])
        assert linker.score_pair(left, EX["a/city0"], right, EX["b/city0"]) == 0.0


class TestTabulate:
    def test_basic_pivot(self, civic_graph):
        from repro.datasets.civic import CIVIC

        dataset = tabulate_entities(civic_graph, CIVIC.AirQualityReading)
        assert dataset.n_rows == 120
        assert "subject" in dataset.column_names
        assert "no2" in dataset.column_names

    def test_unknown_class_rejected(self, civic_graph):
        with pytest.raises(LODError):
            tabulate_entities(civic_graph, EX.Nothing)

    def test_multivalued_count_policy(self):
        graph = Graph()
        graph.add_resource(EX["e1"], rdf_type=EX.Entity, properties={EX.tag: ["a", "b", "c"]})
        graph.add_resource(EX["e2"], rdf_type=EX.Entity, properties={EX.tag: ["a"]})
        counted = tabulate_entities(graph, EX.Entity, multivalued="count")
        assert sorted(counted["tag"].tolist()) == [1.0, 3.0]

    def test_invalid_multivalued_policy(self, civic_graph):
        from repro.datasets.civic import CIVIC

        with pytest.raises(LODError):
            tabulate_entities(civic_graph, CIVIC.AirQualityReading, multivalued="all")

    def test_same_as_merging(self):
        graph = Graph()
        graph.add_resource(EX["e1"], rdf_type=EX.Entity, properties={EX.name: Literal("one")})
        graph.add_resource(EX["e1b"], properties={EX.extra: Literal(9)})
        graph.add(EX["e1"], OWL.sameAs, EX["e1b"])
        merged = tabulate_entities(graph, EX.Entity, follow_same_as=True)
        assert merged["extra"][0] == 9
        unmerged = tabulate_entities(graph, EX.Entity, follow_same_as=False)
        assert "extra" not in unmerged.column_names

    def test_min_property_coverage_drops_rare_columns(self):
        graph = Graph()
        for i in range(10):
            properties = {EX.always: Literal(i)}
            if i == 0:
                properties[EX.rare] = Literal("x")
            graph.add_resource(EX[f"e{i}"], rdf_type=EX.Entity, properties=properties)
        dataset = tabulate_entities(graph, EX.Entity, min_property_coverage=0.5)
        assert "always" in dataset.column_names
        assert "rare" not in dataset.column_names

    def test_dimensionality_report(self, civic_graph):
        from repro.datasets.civic import CIVIC

        report = dimensionality_report(civic_graph, CIVIC.AirQualityReading)
        assert report["n_entities"] == 120
        assert 0.0 <= report["sparsity"] <= 1.0


class TestPublish:
    def test_publish_dataset_as_data_cube(self, tiny_dataset):
        graph = publish_dataset(tiny_dataset)
        observations = graph.subjects_of_type(QB.Observation)
        assert len(observations) == tiny_dataset.n_rows
        assert len(graph.subjects_of_type(QB.ComponentProperty)) == tiny_dataset.n_columns

    def test_publish_quality_profile(self, tiny_dataset):
        profile = measure_quality(tiny_dataset)
        graph = publish_quality_profile(profile, tiny_dataset.name)
        measurements = graph.subjects_of_type(DQV.QualityMeasurement)
        assert len(measurements) == len(profile.criteria())

    def test_publish_quality_profile_accepts_plain_dict(self):
        graph = publish_quality_profile({"completeness": 0.9}, "plain")
        assert len(graph.subjects_of_type(DQV.QualityMeasurement)) == 1

    def test_publish_patterns(self):
        patterns = [{"antecedent": "a", "consequent": "b", "support": 0.2, "confidence": 0.9}]
        graph = publish_patterns(patterns, "demo", "apriori")
        assert len(graph.subjects_of_type(OPENBI.Pattern)) == 1
        assert len(graph.subjects_of_type(OPENBI.Algorithm)) == 1

    def test_publish_recommendation(self):
        graph = publish_recommendation("demo", "naive_bayes", 0.91, "because quality is low")
        recommendations = graph.subjects_of_type(OPENBI.Recommendation)
        assert len(recommendations) == 1
        assert graph.value(recommendations[0], OPENBI.expectedScore) == pytest.approx(0.91)
