"""Shared fixtures for the test suite.

Expensive artefacts (experiment campaigns, knowledge bases) are built once per
session on deliberately small datasets so the whole suite stays fast while
still exercising the real code paths.
"""

from __future__ import annotations

import pytest

from repro.core import ExperimentPlan, ExperimentRunner, UserProfile
from repro.datasets import (
    air_quality,
    census_income,
    make_classification_dataset,
    make_clustered_dataset,
    make_transactions_dataset,
    municipal_budget,
    service_requests,
)
from repro.datasets.civic import civic_lod_graph
from repro.tabular.dataset import Column, ColumnRole, ColumnType, Dataset


@pytest.fixture
def tiny_dataset() -> Dataset:
    """A small hand-written mixed-type dataset with known values."""
    return Dataset(
        [
            Column("id", ["r1", "r2", "r3", "r4", "r5"], ctype=ColumnType.STRING, role=ColumnRole.IDENTIFIER),
            Column("amount", [10.0, 20.0, None, 40.0, 50.0], ctype=ColumnType.NUMERIC),
            Column("district", ["north", "south", "north", None, "south"], ctype=ColumnType.CATEGORICAL),
            Column("active", [True, False, True, True, False], ctype=ColumnType.BOOLEAN),
            Column("label", ["a", "b", "a", "b", "a"], ctype=ColumnType.CATEGORICAL, role=ColumnRole.TARGET),
        ],
        name="tiny",
    )


@pytest.fixture
def clean_classification() -> Dataset:
    """A clean, well-separated classification dataset (no quality problems)."""
    return make_classification_dataset(n_rows=120, n_numeric=3, n_categorical=1, seed=7)


@pytest.fixture
def clustered_dataset() -> Dataset:
    return make_clustered_dataset(n_rows=90, n_clusters=3, seed=5)


@pytest.fixture
def transactions_dataset() -> Dataset:
    return make_transactions_dataset(n_rows=200, seed=5)


@pytest.fixture
def budget_dataset() -> Dataset:
    return municipal_budget(n_rows=120, seed=0)


@pytest.fixture
def dirty_budget_dataset() -> Dataset:
    return municipal_budget(n_rows=120, seed=0, dirty=True)


@pytest.fixture
def air_quality_dataset() -> Dataset:
    return air_quality(n_rows=120, seed=1)


@pytest.fixture
def census_dataset() -> Dataset:
    return census_income(n_rows=150, seed=2)


@pytest.fixture
def requests_dataset() -> Dataset:
    return service_requests(n_rows=120, seed=3)


@pytest.fixture
def civic_graph(air_quality_dataset):
    """A LOD graph published from the air-quality dataset."""
    return civic_lod_graph(air_quality_dataset, entity_class="AirQualityReading")


@pytest.fixture(scope="session")
def small_knowledge_base():
    """A small but real DQ4DM knowledge base shared by advisor/rules/bench tests."""
    runner = ExperimentRunner(
        profile=UserProfile(
            name="test",
            algorithms=("decision_tree", "naive_bayes", "knn", "one_r"),
            cv_folds=3,
        ),
        plan=ExperimentPlan(
            criteria=("completeness", "accuracy", "balance"),
            simple_severities=(0.0, 0.2, 0.4),
            mixed_severity=0.25,
        ),
    )
    dataset = make_classification_dataset(n_rows=120, n_numeric=3, n_categorical=1, seed=3)
    return runner.run([dataset])
