"""Unit tests for the CSV / JSON / XML / HTML readers and writers."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.tabular.dataset import ColumnType, is_missing_value
from repro.tabular.io_csv import read_csv, read_csv_files, read_csv_text, write_csv, write_csv_text
from repro.tabular.io_html import read_html_table, write_html_table
from repro.tabular.io_json import read_json_records, write_json_records
from repro.tabular.io_xml import read_xml_records, write_xml_records

CSV_TEXT = "name,population,founded\nAlicante,330000,1265-01-01\nMatanzas,145000,1693-10-12\nElx,,\n"


class TestCSV:
    def test_read_csv_text_types(self):
        ds = read_csv_text(CSV_TEXT)
        assert ds.shape == (3, 3)
        assert ds["population"].ctype == ColumnType.NUMERIC
        assert ds["founded"].ctype == ColumnType.DATETIME

    def test_missing_tokens_normalised(self):
        ds = read_csv_text("a,b\n1,NA\n2,?\n3,null\n")
        assert ds["b"].n_missing() == 3

    def test_semicolon_sniffing(self):
        ds = read_csv_text("a;b\n1;x\n2;y\n")
        assert ds.column_names == ["a", "b"]

    def test_pipe_and_tab_sniffing(self):
        assert read_csv_text("a|b\n1|x\n").column_names == ["a", "b"]
        assert read_csv_text("a\tb\n1\tx\n").column_names == ["a", "b"]

    def test_empty_content_rejected(self):
        with pytest.raises(SchemaError):
            read_csv_text("   ")

    def test_header_only_rejected(self):
        with pytest.raises(SchemaError):
            read_csv_text("a,b\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(SchemaError):
            read_csv_text("a,a\n1,2\n")

    def test_short_rows_padded(self):
        ds = read_csv_text("a,b,c\n1,2\n")
        assert is_missing_value(ds["c"][0])

    def test_long_rows_rejected_not_silently_truncated(self):
        with pytest.raises(SchemaError, match="row 2 has 3 cells"):
            read_csv_text("a,b\n1,2,3\n")

    def test_long_row_error_names_the_salvage_tier(self):
        with pytest.raises(SchemaError, match="salvage"):
            read_csv_text("a,b\nx,1\ny,2,SPILL\n")

    def test_reader_choke_wrapped_as_schema_error(self):
        # an embedded bare \r makes csv.reader raise; the strict tier must
        # surface that as an actionable SchemaError, not a raw _csv.Error
        with pytest.raises(SchemaError, match="malformed CSV.*salvage"):
            read_csv_text("a,b\n1,2\nbad\rcell,3\n4,5\n")

    def test_quoted_header_does_not_confuse_sniffer(self):
        # the comma inside the quoted header cell must not outvote the
        # real semicolon delimiter
        ds = read_csv_text('"a,b";c\n1;2\n')
        assert ds.column_names == ["a,b", "c"]
        assert ds.n_rows == 1

    def test_quoted_header_with_escaped_quotes_sniffed(self):
        ds = read_csv_text('"say ""hi, there""";c\nx;2\n')
        assert ds.column_names == ['say "hi, there"', "c"]

    def test_roundtrip_file(self, tmp_path, budget_dataset):
        path = write_csv(budget_dataset, tmp_path / "budget.csv")
        loaded = read_csv(path)
        assert loaded.shape == budget_dataset.shape
        assert loaded.column_names == budget_dataset.column_names

    def test_roundtrip_text_preserves_integers(self):
        ds = read_csv_text("a\n1\n2\n")
        text = write_csv_text(ds)
        assert "1" in text and "1.0" not in text

    def test_read_csv_files_concatenates(self, tmp_path, budget_dataset):
        p1 = write_csv(budget_dataset.head(10), tmp_path / "a.csv")
        p2 = write_csv(budget_dataset.take(range(10, 20)), tmp_path / "b.csv")
        combined = read_csv_files([p1, p2])
        assert combined.n_rows == 20

    def test_read_csv_files_empty_rejected(self):
        with pytest.raises(SchemaError):
            read_csv_files([])


class TestCSVRoundTripFixpoint:
    """``read_csv_text(write_csv_text(ds))`` must be a fixpoint after one hop.

    The first hop may normalise lexical forms (``TRUE`` → ``true``, ``3.0`` →
    ``3``); from then on, writing and re-reading must reproduce the dataset
    exactly, for every supported delimiter.
    """

    MIXED = (
        "name,count,ratio,flag,note\n"
        "alpha,1,0.5,true,x\n"
        "beta,2,2.25,false,?\n"
        "gamma,,3.0,TRUE,\n"
        "delta,4,,false,y\n"
    )

    @pytest.mark.parametrize("delimiter", [",", ";", "\t", "|"])
    def test_round_trip_is_a_fixpoint(self, delimiter):
        first = read_csv_text(self.MIXED)
        second = read_csv_text(write_csv_text(first, delimiter=delimiter))
        third = read_csv_text(write_csv_text(second, delimiter=delimiter))
        assert second == third
        assert second.column_names == first.column_names
        assert [c.ctype for c in second.columns] == [c.ctype for c in first.columns]

    def test_missing_tokens_stay_missing_across_round_trips(self):
        first = read_csv_text("a,b\n1,NA\n2,null\n3,?\n")
        assert first["b"].n_missing() == 3
        second = read_csv_text(write_csv_text(first))
        assert second["b"].n_missing() == 3
        assert second == read_csv_text(write_csv_text(second))

    def test_bool_and_integral_float_formatting(self):
        first = read_csv_text("flag,n\ntrue,1\nfalse,2\n")
        text = write_csv_text(first)
        assert "true" in text and "false" in text
        assert "1\r\n" in text or "1\n" in text  # integral floats written as ints
        assert "1.0" not in text
        assert read_csv_text(text) == first

    def test_fixpoint_for_generated_dataset(self, budget_dataset):
        second = read_csv_text(write_csv_text(budget_dataset))
        third = read_csv_text(write_csv_text(second))
        assert second == third


class TestJSON:
    def test_roundtrip_string(self, tiny_dataset):
        text = write_json_records(tiny_dataset)
        loaded = read_json_records(text)
        assert loaded.n_rows == tiny_dataset.n_rows
        assert set(loaded.column_names) == set(tiny_dataset.column_names)

    def test_roundtrip_file(self, tmp_path, tiny_dataset):
        path = tmp_path / "data.json"
        write_json_records(tiny_dataset, path)
        loaded = read_json_records(path)
        assert loaded.n_rows == tiny_dataset.n_rows

    def test_records_wrapper_accepted(self):
        ds = read_json_records('{"records": [{"a": 1}, {"a": 2}]}')
        assert ds.n_rows == 2

    def test_empty_array_rejected(self):
        with pytest.raises(SchemaError):
            read_json_records("[]")

    def test_non_object_records_rejected(self):
        with pytest.raises(SchemaError):
            read_json_records("[1, 2, 3]")


class TestXML:
    def test_roundtrip(self, tiny_dataset):
        text = write_xml_records(tiny_dataset)
        loaded = read_xml_records(text)
        assert loaded.n_rows == tiny_dataset.n_rows
        assert set(loaded.column_names) == set(tiny_dataset.column_names)

    def test_attributes_are_fields(self):
        xml = '<rows><row id="1"><value>10</value></row><row id="2"><value>20</value></row></rows>'
        ds = read_xml_records(xml)
        assert set(ds.column_names) == {"id", "value"}

    def test_record_tag_filter(self):
        xml = "<root><row><a>1</a></row><meta><a>ignored</a></meta><row><a>2</a></row></root>"
        ds = read_xml_records(xml, record_tag="row")
        assert ds.n_rows == 2

    def test_invalid_xml_rejected(self):
        with pytest.raises(SchemaError):
            read_xml_records("<unclosed>")

    def test_no_records_rejected(self):
        with pytest.raises(SchemaError):
            read_xml_records("<root></root>")

    def test_file_roundtrip(self, tmp_path, budget_dataset):
        path = tmp_path / "budget.xml"
        write_xml_records(budget_dataset.head(12), path)
        loaded = read_xml_records(path)
        assert loaded.n_rows == 12


class TestHTML:
    def test_roundtrip(self, tiny_dataset):
        html = write_html_table(tiny_dataset, caption="tiny")
        loaded = read_html_table(html)
        assert loaded.n_rows == tiny_dataset.n_rows

    def test_table_selection_by_index(self):
        html = (
            "<html><body>"
            "<table><tr><th>a</th></tr><tr><td>1</td></tr></table>"
            "<table><tr><th>b</th></tr><tr><td>2</td></tr><tr><td>3</td></tr></table>"
            "</body></html>"
        )
        second = read_html_table(html, index=1)
        assert second.column_names == ["b"]
        assert second.n_rows == 2

    def test_missing_table_rejected(self):
        with pytest.raises(SchemaError):
            read_html_table("<html><body><p>no tables</p></body></html>")

    def test_out_of_range_index_rejected(self):
        html = "<table><tr><th>a</th></tr><tr><td>1</td></tr></table>"
        with pytest.raises(SchemaError):
            read_html_table(html, index=3)

    def test_header_only_table_rejected(self):
        with pytest.raises(SchemaError):
            read_html_table("<table><tr><th>a</th></tr></table>")

    def test_file_roundtrip(self, tmp_path, budget_dataset):
        path = tmp_path / "budget.html"
        write_html_table(budget_dataset.head(8), path)
        loaded = read_html_table(path)
        assert loaded.n_rows == 8
