"""Row-vs-encoded equivalence harness for the data-quality subsystem.

Every default criterion has two execution paths: the row-at-a-time reference
``measure`` and the vectorized ``_measure_encoded`` over the shared
encoded-matrix views.  They must be **bit-identical** — same ``score`` float
and a ``details`` tree with the same keys in the same order, holding the same
plain-Python value types — on mixed-type data, injected quality problems and
every edge case.  The harness also pins the executional contracts: criteria
never mutate the shared views, ``measure_quality`` encodes a dataset at most
once (and the advisor's profile shares that encoding with subsequent mining),
and the ``_force_row_measure`` escape hatch really routes to the reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.injection import DuplicateInjector, MissingValuesInjector
from repro.datasets import make_classification_dataset
from repro.quality import (
    CompletenessCriterion,
    CorrelationCriterion,
    DuplicationCriterion,
    get_criterion,
    measure_quality,
)
from repro.quality.criteria import CriterionMeasure
from repro.quality.profile import DEFAULT_CRITERIA
from repro.tabular.dataset import Column, ColumnRole, ColumnType, Dataset
from repro.tabular.encoded import EncodedDataset, encode_dataset


# ---------------------------------------------------------------------------
# Comparison helpers
# ---------------------------------------------------------------------------

def _assert_same_tree(a, b, path="details"):
    """Exact structural equality: same types, same dict key order, same bits."""
    assert type(a) is type(b), f"{path}: {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        assert list(a) == list(b), f"{path}: key sets/order differ"
        for key in a:
            _assert_same_tree(a[key], b[key], f"{path}[{key!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_same_tree(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def _assert_identical(row: CriterionMeasure, enc: CriterionMeasure):
    assert row.criterion == enc.criterion
    assert type(row.score) is type(enc.score)
    assert row.score == enc.score, f"{row.criterion}: {row.score!r} != {enc.score!r}"
    _assert_same_tree(row.details, enc.details, f"{row.criterion}.details")


def _assert_all_criteria_identical(dataset: Dataset):
    encoded = encode_dataset(dataset)
    for name in DEFAULT_CRITERIA:
        criterion = get_criterion(name)
        try:
            row = criterion.measure(dataset)
        except Exception as exc:  # both paths must fail the same way
            with pytest.raises(type(exc)):
                get_criterion(name).measure_encoded(encoded)
            continue
        enc = criterion._measure_encoded(encoded)
        assert enc is not None, f"{name}: encoded path did not engage"
        _assert_identical(row, enc)


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------

def _mixed_dataset(n_rows: int = 200, missing: float = 0.25, seed: int = 11) -> Dataset:
    """Numeric/categorical/boolean/datetime/string columns with missing values
    and injected (near-)duplicate rows."""
    base = make_classification_dataset(n_rows=n_rows, n_numeric=3, n_categorical=2, seed=seed)
    rng = np.random.default_rng(seed + 1)
    base = base.add_column(
        Column("flag", rng.choice([True, False], size=n_rows).tolist(), ctype=ColumnType.BOOLEAN)
    )
    base = base.add_column(
        Column("day", [f"2024-0{(i % 9) + 1}-1{i % 10}" for i in range(n_rows)], ctype=ColumnType.DATETIME)
    )
    base = base.add_column(
        Column(
            "note",
            [f"Observation  #{i % 17}" if i % 3 else f"observation #{i % 17}" for i in range(n_rows)],
            ctype=ColumnType.STRING,
        )
    )
    base = DuplicateInjector(fuzzy=True).apply(base, 0.15, seed=seed + 2)
    if missing > 0:
        base = MissingValuesInjector().apply(base, missing, seed=seed + 3)
    return base


# ---------------------------------------------------------------------------
# Per-criterion equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", DEFAULT_CRITERIA)
@pytest.mark.parametrize("missing", [0.0, 0.3])
def test_criterion_row_vs_encoded_on_mixed_data(name, missing):
    dataset = _mixed_dataset(missing=missing)
    criterion = get_criterion(name)
    row = criterion.measure(dataset)
    enc = criterion._measure_encoded(encode_dataset(dataset))
    assert enc is not None, f"{name}: encoded path did not engage"
    _assert_identical(row, enc)


def test_all_missing_column():
    _assert_all_criteria_identical(
        Dataset(
            [
                Column("gone", [None, None, None, None], ctype=ColumnType.CATEGORICAL),
                Column("void", [float("nan")] * 4, ctype=ColumnType.NUMERIC),
                Column("x", [1.0, 2.0, 3.0, 4.0], ctype=ColumnType.NUMERIC),
            ],
            name="all-missing",
        )
    )


def test_constant_column():
    _assert_all_criteria_identical(
        Dataset(
            [
                Column("k", ["same"] * 6, ctype=ColumnType.CATEGORICAL),
                Column("x", [7.0] * 6, ctype=ColumnType.NUMERIC),
                Column("t", ["a", "b", "a", "b", "a", "b"], ctype=ColumnType.CATEGORICAL, role=ColumnRole.TARGET),
            ],
            name="constant",
        )
    )


def test_single_row():
    _assert_all_criteria_identical(
        Dataset(
            [
                Column("x", [1.5], ctype=ColumnType.NUMERIC),
                Column("c", ["one"], ctype=ColumnType.CATEGORICAL),
                Column("f", [True], ctype=ColumnType.BOOLEAN),
            ],
            name="single-row",
        )
    )


def test_no_numeric_columns():
    _assert_all_criteria_identical(
        Dataset(
            [
                Column("c", ["a", "b", "c", "a", "b"], ctype=ColumnType.CATEGORICAL),
                Column("s", ["v", "w", "x", "y", "z"], ctype=ColumnType.STRING),
                Column("f", [True, False, True, True, False], ctype=ColumnType.BOOLEAN),
            ],
            name="no-numeric",
        )
    )


def test_empty_dataset():
    # Zero rows: completeness divides by n_rows on both paths (same error);
    # every other criterion must produce identical measures.
    _assert_all_criteria_identical(
        Dataset(
            [
                Column("x", [], ctype=ColumnType.NUMERIC),
                Column("c", [], ctype=ColumnType.CATEGORICAL),
            ],
            name="empty",
        )
    )


def test_literal_missing_string_collides_like_row_path():
    # The row path keys missing cells as the string "<missing>", which
    # collides with a real cell holding that text in exact mode; the encoded
    # row-hash must replicate the collision.
    dataset = Dataset(
        [Column("s", ["<missing>", None, "x", None, "<missing>"], ctype=ColumnType.STRING)],
        name="collision",
    )
    for fuzzy in (True, False):
        criterion = DuplicationCriterion(fuzzy=fuzzy)
        _assert_identical(criterion.measure(dataset), criterion._measure_encoded(encode_dataset(dataset)))
    # Four rows share the "<missing>" key (3 duplicates of the first), "x" is unique.
    assert DuplicationCriterion(fuzzy=False).measure(dataset).details["n_exact_duplicates"] == 3


def test_fuzzy_duplicates_case_accents_whitespace():
    dataset = Dataset(
        [
            Column(
                "city",
                ["Málaga", "malaga", "  MALAGA ", "Sevilla", "sevilla", "Granada", None],
                ctype=ColumnType.CATEGORICAL,
            ),
            Column("x", [1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0], ctype=ColumnType.NUMERIC),
        ],
        name="fuzzy",
    )
    encoded = encode_dataset(dataset)
    for fuzzy in (True, False):
        criterion = DuplicationCriterion(fuzzy=fuzzy)
        _assert_identical(criterion.measure(dataset), criterion._measure_encoded(encoded))
    fuzzy_measure = DuplicationCriterion(fuzzy=True)._measure_encoded(encoded)
    assert fuzzy_measure.details["n_exact_duplicates"] == 0
    assert fuzzy_measure.details["n_fuzzy_duplicates"] == 3  # 2 Málaga variants + 1 Sevilla


def test_numeric_rounding_keys_match_row_path():
    # round(·, 6) merges near-equal floats; ±0.0 share one key on both paths.
    dataset = Dataset(
        [Column("x", [1.0000001, 1.00000012, 1.0, -0.0, 0.0, 2.5], ctype=ColumnType.NUMERIC)],
        name="rounding",
    )
    criterion = DuplicationCriterion()
    _assert_identical(criterion.measure(dataset), criterion._measure_encoded(encode_dataset(dataset)))


# ---------------------------------------------------------------------------
# Correlation cap
# ---------------------------------------------------------------------------

def _wide_dataset(n_numeric=6, n_categorical=6, n_rows=40, seed=23) -> Dataset:
    rng = np.random.default_rng(seed)
    columns = [
        Column(f"n{i}", rng.normal(size=n_rows).tolist(), ctype=ColumnType.NUMERIC)
        for i in range(n_numeric)
    ]
    columns += [
        Column(f"c{i}", rng.choice(["a", "b", "c"], size=n_rows).tolist(), ctype=ColumnType.CATEGORICAL)
        for i in range(n_categorical)
    ]
    return Dataset(columns, name="wide")


@pytest.mark.parametrize("max_pairs", [5, 17, 21])
def test_correlation_cap_exits_both_loops_identically(max_pairs, monkeypatch):
    # 6 numeric -> 15 pearson pairs, 6 categorical -> 15 cramers pairs.
    # max_pairs=5 caps inside the numeric loop, 17 inside the categorical one,
    # 21 caps mid-categorical too; the cap must end the examination outright
    # (no association evaluated past it) and identically on both paths.
    dataset = _wide_dataset()
    calls = {"n": 0}

    import repro.quality.correlation as correlation_module

    real_pearson = correlation_module.pearson
    real_pearson_encoded = correlation_module._pearson_encoded
    real_cramers = correlation_module.cramers_v
    real_cramers_encoded = correlation_module._cramers_v_encoded

    def counting(fn):
        def wrapper(*args, **kwargs):
            calls["n"] += 1
            return fn(*args, **kwargs)

        return wrapper

    monkeypatch.setattr(correlation_module, "pearson", counting(real_pearson))
    monkeypatch.setattr(correlation_module, "_pearson_encoded", counting(real_pearson_encoded))
    monkeypatch.setattr(correlation_module, "cramers_v", counting(real_cramers))
    monkeypatch.setattr(correlation_module, "_cramers_v_encoded", counting(real_cramers_encoded))

    criterion = CorrelationCriterion(max_pairs=max_pairs)
    row = criterion.measure(dataset)
    assert calls["n"] == max_pairs, "row path evaluated associations past the cap"
    calls["n"] = 0
    enc = criterion._measure_encoded(encode_dataset(dataset))
    assert calls["n"] == max_pairs, "encoded path evaluated associations past the cap"
    _assert_identical(row, enc)
    assert row.details["n_pairs"] == max_pairs


# ---------------------------------------------------------------------------
# Executional contracts
# ---------------------------------------------------------------------------

def test_force_row_measure_skips_encoded_path():
    dataset = _mixed_dataset(n_rows=60)
    criterion = get_criterion("completeness")
    criterion._force_row_measure = True

    def boom(encoded):  # pragma: no cover - must never run
        raise AssertionError("encoded path ran despite _force_row_measure")

    criterion._measure_encoded = boom
    forced = criterion.measure_encoded(encode_dataset(dataset))
    _assert_identical(get_criterion("completeness").measure(dataset), forced)


def test_measure_quality_row_and_encoded_profiles_identical():
    dataset = _mixed_dataset(n_rows=120)
    fast = measure_quality(dataset)
    forced = []
    for name in DEFAULT_CRITERIA:
        criterion = get_criterion(name)
        criterion._force_row_measure = True
        forced.append(criterion)
    slow = measure_quality(dataset, criteria=forced)
    assert list(fast.as_vector()) == list(slow.as_vector())
    for name in DEFAULT_CRITERIA:
        _assert_identical(slow.measures[name], fast.measures[name])


def test_subclass_overriding_measure_keeps_its_behaviour():
    class Opinionated(CompletenessCriterion):
        def measure(self, dataset):
            return CriterionMeasure(self.name, 0.123, {"overridden": True})

    result = Opinionated().measure_encoded(encode_dataset(_mixed_dataset(n_rows=30)))
    assert result.score == 0.123
    assert result.details == {"overridden": True}


def test_measure_quality_encodes_at_most_once(monkeypatch):
    dataset = _mixed_dataset(n_rows=80)
    roots = []
    original_init = EncodedDataset.__init__

    def counting_init(self, ds, _parent=None, _parent_indices=None):
        if _parent is None:
            roots.append(ds)
        original_init(self, ds, _parent=_parent, _parent_indices=_parent_indices)

    monkeypatch.setattr(EncodedDataset, "__init__", counting_init)
    measure_quality(dataset)
    measure_quality(dataset)
    assert roots.count(dataset) <= 1, "measure_quality re-encoded a cached dataset"


def test_advisor_profile_and_cv_share_one_encoding(monkeypatch, small_knowledge_base):
    from repro.core.advisor import Advisor
    from repro.mining import CLASSIFIER_REGISTRY, cross_validate

    dataset = make_classification_dataset(n_rows=60, n_numeric=3, n_categorical=1, seed=41)
    roots = []
    original_init = EncodedDataset.__init__

    def counting_init(self, ds, _parent=None, _parent_indices=None):
        if _parent is None:
            roots.append(ds)
        original_init(self, ds, _parent=_parent, _parent_indices=_parent_indices)

    monkeypatch.setattr(EncodedDataset, "__init__", counting_init)
    recommendation = Advisor(small_knowledge_base, k=3).advise(dataset)
    cross_validate(CLASSIFIER_REGISTRY[recommendation.best_algorithm], dataset, k=3, seed=0)
    assert roots.count(dataset) == 1, "profile and CV did not share the dataset encoding"


def test_criteria_do_not_mutate_shared_views():
    dataset = _mixed_dataset(n_rows=100)
    encoded = encode_dataset(dataset)
    snapshots = {}
    for column in dataset.columns:
        values, missing = encoded.numeric_view(column.name)
        codes, vocabulary, _ = encoded.codes_view(column.name)
        snapshots[column.name] = (
            values.copy(),
            missing.copy(),
            codes.copy(),
            list(vocabulary),
        )
    reference = dataset.copy()
    measure_quality(dataset)
    assert dataset == reference
    for name, (values, missing, codes, vocabulary) in snapshots.items():
        new_values, new_missing = encoded.numeric_view(name)
        new_codes, new_vocabulary, _ = encoded.codes_view(name)
        assert np.array_equal(values, new_values, equal_nan=True), name
        assert np.array_equal(missing, new_missing), name
        assert np.array_equal(codes, new_codes), name
        assert vocabulary == new_vocabulary, name
