"""Unit tests for preprocessing: imputation, encoding, scaling, feature selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.injection import CorrelatedAttributesInjector, MissingValuesInjector
from repro.exceptions import MiningError
from repro.mining.preprocessing import (
    DatasetEncoder,
    correlation_filter,
    encode_labels,
    impute,
    information_gain_ranking,
    select_features,
    standardize,
    variance_threshold,
)
from repro.tabular.dataset import Column, ColumnRole, ColumnType, Dataset, is_missing_value


class TestImputation:
    def test_mean_mode(self, tiny_dataset):
        filled = impute(tiny_dataset, "mean_mode")
        assert filled["amount"].n_missing() == 0
        assert filled["district"].n_missing() == 0
        assert filled["amount"][2] == pytest.approx(30.0)
        # mode of district is a tie between north and south -> one of them
        assert filled["district"][3] in {"north", "south"}

    def test_median_mode(self, tiny_dataset):
        filled = impute(tiny_dataset, "median_mode")
        assert filled["amount"][2] == pytest.approx(30.0)

    def test_constant(self, tiny_dataset):
        filled = impute(tiny_dataset, "constant")
        assert filled["amount"][2] == 0.0
        assert filled["district"][3] == "missing"

    def test_drop_rows(self, tiny_dataset):
        reduced = impute(tiny_dataset, "drop_rows")
        assert reduced.n_rows == 3

    def test_drop_rows_everything_missing_rejected(self):
        ds = Dataset.from_dict({"x": [None, None]}, ctypes={"x": ColumnType.NUMERIC})
        with pytest.raises(MiningError):
            impute(ds, "drop_rows")

    def test_unknown_strategy_rejected(self, tiny_dataset):
        with pytest.raises(MiningError):
            impute(tiny_dataset, "magic")

    def test_original_untouched(self, tiny_dataset):
        impute(tiny_dataset, "mean_mode")
        assert tiny_dataset["amount"].n_missing() == 1


class TestEncoder:
    def test_shapes_and_labels(self, clean_classification):
        encoder = DatasetEncoder()
        X = encoder.fit_transform(clean_classification)
        assert X.shape[0] == clean_classification.n_rows
        assert X.shape[1] == len(encoder.feature_labels_)
        # one-hot labels look like cat_0=level_x
        assert any("=" in label for label in encoder.feature_labels_)

    def test_scaling_zero_mean(self, clean_classification):
        encoder = DatasetEncoder(scale=True)
        X = encoder.fit_transform(clean_classification)
        numeric_block = X[:, : len([c for c in clean_classification.feature_columns() if c.is_numeric()])]
        assert np.allclose(numeric_block.mean(axis=0), 0.0, atol=1e-9)

    def test_missing_numeric_imputed_with_mean(self):
        ds = Dataset.from_dict({"x": [1.0, None, 3.0], "target": ["a", "b", "a"]}).set_target("target")
        encoder = DatasetEncoder(scale=False)
        X = encoder.fit_transform(ds)
        assert X[1, 0] == pytest.approx(2.0)

    def test_unseen_category_encoded_as_zeros(self):
        train = Dataset.from_dict({"c": ["a", "b"], "target": ["x", "y"]}).set_target("target")
        test = Dataset.from_dict({"c": ["z"], "target": ["x"]}).set_target("target")
        encoder = DatasetEncoder()
        encoder.fit(train)
        encoded = encoder.transform(test)
        assert np.allclose(encoded, 0.0)

    def test_transform_before_fit_rejected(self, clean_classification):
        with pytest.raises(MiningError):
            DatasetEncoder().transform(clean_classification)

    def test_no_features_rejected(self):
        ds = Dataset.from_dict({"target": ["a", "b"]}).set_target("target")
        with pytest.raises(MiningError):
            DatasetEncoder().fit(ds)

    def test_encode_labels(self):
        codes, labels = encode_labels(["b", "a", "b", None])
        assert labels == ["a", "b"]
        assert codes.tolist() == [1, 0, 1, -1]


class TestStandardize:
    def test_standardize_only_numeric_features(self, budget_dataset):
        scaled = standardize(budget_dataset, columns=["budgeted"])
        values = np.asarray(scaled["budgeted"].non_missing())
        assert abs(values.mean()) < 1e-9


class TestFeatureSelection:
    def test_variance_threshold_drops_constant(self, clean_classification):
        with_constant = clean_classification.add_column(Column("constant", [1.0] * clean_classification.n_rows))
        kept = variance_threshold(with_constant)
        assert "constant" not in kept
        assert "num_0" in kept

    def test_correlation_filter_drops_redundant_copies(self, clean_classification):
        correlated = CorrelatedAttributesInjector().apply(clean_classification, 1.0, seed=0)
        kept = correlation_filter(correlated, threshold=0.9)
        assert len(kept) < len(correlated.feature_names())
        # original features survive, redundant copies are the ones dropped
        assert "num_0" in kept

    def test_information_gain_ranking_prefers_signal(self, clean_classification):
        noisy = clean_classification.add_column(
            Column("pure_noise", list(np.random.default_rng(0).normal(size=clean_classification.n_rows)))
        )
        ranking = dict(information_gain_ranking(noisy))
        assert ranking["num_0"] > ranking["pure_noise"]

    def test_select_features_keeps_target_and_identifier(self, budget_dataset):
        reduced = select_features(budget_dataset, k=2)
        assert reduced.target_column().name == "overrun"
        assert "line_id" in reduced.column_names
        assert len(reduced.feature_columns()) == 2

    def test_select_features_variance_method(self, clean_classification):
        reduced = select_features(clean_classification, k=2, method="variance")
        assert len(reduced.feature_columns()) <= 3

    def test_select_features_invalid_args(self, clean_classification):
        with pytest.raises(MiningError):
            select_features(clean_classification, k=0)
        with pytest.raises(MiningError):
            select_features(clean_classification, k=2, method="astrology")

    def test_missing_values_do_not_break_selection(self, clean_classification):
        holed = MissingValuesInjector().apply(clean_classification, 0.2, seed=1)
        ranking = information_gain_ranking(holed)
        assert len(ranking) == len(holed.feature_columns())
