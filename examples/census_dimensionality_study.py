"""Dimensionality study: raw vs PCA vs structure-preserving feature selection.

Run with ``python examples/census_dimensionality_study.py``.

The paper warns that statistical dimensionality reduction such as PCA loses
the data structure a non-expert needs to interpret results.  This example
quantifies the trade-off on the census scenario: irrelevant attributes are
added to simulate a wide LOD tabulation, then three strategies are compared —
mine the raw wide data, reduce with PCA, or select original attributes by
information gain (structure preserved).
"""

from __future__ import annotations

from repro.core import IrrelevantAttributesInjector
from repro.datasets import census_income
from repro.mining import (
    DecisionTreeClassifier,
    KNNClassifier,
    NaiveBayesClassifier,
    PCATransformer,
    cross_validate,
    information_gain_ranking,
    select_features,
)


def main() -> None:
    clean = census_income(n_rows=300, seed=2)
    injector = IrrelevantAttributesInjector(max_added=40)

    print(f"{'added dims':>10} | {'strategy':<22} | {'tree':>6} {'NB':>6} {'kNN':>6}")
    print("-" * 62)
    for severity in (0.0, 0.5, 1.0):
        wide = injector.apply(clean, severity, seed=4)
        n_added = wide.n_columns - clean.n_columns

        variants = {"raw (all attributes)": wide}
        pca = PCATransformer(n_components=6)
        variants["pca (6 components)"] = pca.fit_transform(wide)
        variants["top-6 info-gain attrs"] = select_features(wide, k=6)

        for label, variant in variants.items():
            scores = []
            for factory in (DecisionTreeClassifier, NaiveBayesClassifier, KNNClassifier):
                scores.append(cross_validate(factory, variant, k=3).accuracy)
            print(
                f"{n_added:>10} | {label:<22} | "
                + " ".join(f"{score:6.3f}" for score in scores)
            )
        print("-" * 62)

    ranking = information_gain_ranking(clean)
    print("\nMost informative original attributes (structure preserved):")
    for name, gain in ranking[:5]:
        print(f"  {name:<16} information gain {gain:.3f}")


if __name__ == "__main__":
    main()
