"""Linked Open Data round trip: integrate, link, represent, annotate, share.

Run with ``python examples/lod_publishing_roundtrip.py``.

Two open data sources describe (partly) the same districts.  The script

1. publishes both as LOD graphs and discovers ``owl:sameAs`` links;
2. merges them and pivots the linked graph into a high-dimensional dataset;
3. builds the CWM-like common representation and annotates it with measured
   data quality criteria (the paper's §3.2);
4. serialises the annotated model and shares the quality measurements as LOD
   (Turtle) so any other citizen can reuse them.
"""

from __future__ import annotations

from repro.datasets import air_quality, civic_lod_graph, service_requests
from repro.datasets.civic import CIVIC
from repro.lod import EntityLinker, LinkRule, publish_quality_profile, to_turtle
from repro.lod.tabulate import dimensionality_report, tabulate_entities
from repro.metamodel import annotate_quality, model_from_lod, model_to_xmi, read_quality_annotations
from repro.quality import measure_quality


def main() -> None:
    # 1. Two sources published as LOD.
    air = civic_lod_graph(air_quality(n_rows=120, seed=1), entity_class="AirQualityReading")
    requests = civic_lod_graph(service_requests(n_rows=120, seed=3), entity_class="ServiceRequest")
    print(f"air-quality graph: {len(air)} triples; service-request graph: {len(requests)} triples")

    linker = EntityLinker([LinkRule(CIVIC["district"], CIVIC["district"])], threshold=0.99)
    links = linker.link(air, CIVIC.AirQualityReading, requests, CIVIC.ServiceRequest)
    merged = air.copy("http://openbi.example.org/civic/graph/merged")
    merged.merge(requests)
    linker.materialise(merged, links)
    print(f"entity links discovered: {len(links)}; merged graph: {len(merged)} triples")

    # 2. Pivot the linked graph into a mining-ready table.
    report = dimensionality_report(merged, CIVIC.AirQualityReading)
    table = tabulate_entities(merged, CIVIC.AirQualityReading, follow_same_as=True)
    print(
        f"tabulated {int(report['n_entities'])} entities x {int(report['n_properties'])} properties "
        f"(sparsity {report['sparsity']:.2f}) -> dataset {table.shape}"
    )

    # 3. Common representation + data quality annotation.
    catalog = model_from_lod(merged)
    quality = measure_quality(table)
    table_model = catalog.find_table("AirQualityReading")
    annotate_quality(table_model, quality)
    print("\nquality annotations on the common representation:")
    for key, value in sorted(read_quality_annotations(table_model).items()):
        print(f"  dq:{key:<16} {value:.3f}")

    xmi = model_to_xmi(catalog)
    print(f"\nXMI serialisation of the annotated model: {len(xmi.splitlines())} lines")

    # 4. Share the measurements as LOD.
    shared = publish_quality_profile(quality, "air-quality-merged")
    turtle = to_turtle(shared)
    print(f"published {len(shared)} quality triples; Turtle excerpt:\n")
    print("\n".join(turtle.splitlines()[:15]))


if __name__ == "__main__":
    main()
