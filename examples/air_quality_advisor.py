"""Data-quality-aware advice for mining an air-quality source.

Run with ``python examples/air_quality_advisor.py``.

This is the paper's Figure 2 end to end: a knowledge base is built by running
the mining algorithms over controlled degradations of a clean air-quality
sample (Phase 1 simple + Phase 2 mixed); then a *dirty* air-quality source is
profiled and the advisor recommends the algorithm to use, compared against the
naive baselines a non-expert would otherwise fall back to.
"""

from __future__ import annotations

from repro.core import Advisor, ExperimentPlan, ExperimentRunner, UserProfile, derive_guidance_rules
from repro.core.advisor import fixed_best_on_clean_baseline, random_choice_baseline
from repro.core.rules import guidance_report
from repro.datasets import air_quality
from repro.mining import CLASSIFIER_REGISTRY, cross_validate
from repro.quality import measure_quality, quality_report


def main() -> None:
    algorithms = ("decision_tree", "naive_bayes", "knn", "one_r")

    # Stage 1: experiments on a clean reference sample -> knowledge base.
    clean = air_quality(n_rows=240, seed=1)
    runner = ExperimentRunner(
        profile=UserProfile(name="air-quality", algorithms=algorithms, cv_folds=3),
        plan=ExperimentPlan(
            criteria=("completeness", "accuracy", "balance", "dimensionality"),
            simple_severities=(0.0, 0.15, 0.3),
            mixed_severity=0.2,
        ),
    )
    knowledge_base = runner.run([clean])
    print(f"Knowledge base: {len(knowledge_base)} records over {len(knowledge_base.algorithms())} algorithms")
    print(guidance_report(derive_guidance_rules(knowledge_base)))

    # Stage 2: a dirty, previously unseen source arrives.
    dirty = air_quality(n_rows=300, seed=42, dirty=True)
    profile = measure_quality(dirty)
    print("\n" + quality_report(profile, reference=measure_quality(clean)))

    advisor = Advisor(knowledge_base, k=7)
    recommendation = advisor.advise_profile(profile)
    print(f"\nAdvisor: the best option is {recommendation.best_algorithm.upper()}")
    print(recommendation.rationale)

    # Compare the advice against the baselines by actually running everything.
    print("\nActual cross-validated accuracy on the dirty source:")
    actual = {}
    for name in algorithms:
        result = cross_validate(CLASSIFIER_REGISTRY[name], dirty, k=3)
        actual[name] = result.accuracy
        print(f"  {name:<20} {result.accuracy:.3f}")
    advised = actual[recommendation.best_algorithm]
    fixed = actual[fixed_best_on_clean_baseline(knowledge_base)]
    random_pick = actual[random_choice_baseline(algorithms, seed=3)]
    best_possible = max(actual.values())
    print("\nStrategy comparison (higher is better):")
    print(f"  advisor choice        : {advised:.3f}")
    print(f"  fixed best-on-clean   : {fixed:.3f}")
    print(f"  random choice         : {random_pick:.3f}")
    print(f"  oracle (best possible): {best_possible:.3f}")
    print(f"  advisor regret vs oracle: {best_possible - advised:.3f}")


if __name__ == "__main__":
    main()
