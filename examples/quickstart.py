"""Quickstart: from a raw open-data CSV to quality-aware mining advice and BI.

Run with ``python examples/quickstart.py``.  This script is the runnable twin
of the README's quickstart section and is executed by CI so the documentation
cannot silently rot.

The script walks the whole OpenBI loop on a small synthetic civic source:

1. write a CSV file the way an open data portal would publish it — then
   corrupt a copy of it at the byte level and salvage the corrupted file
   back with the recovery tier (see docs/recovery.md);
2. load it into a typed dataset and measure its data quality profile;
3. build a small DQ4DM knowledge base by running controlled experiments;
4. ask the advisor which mining algorithm to use on the (dirty) source;
5. train the recommended algorithm and print the resulting report;
6. roll the source up into an OLAP cube and score per-district KPIs
   (computed on the vectorized encoded core — see docs/encoded-core.md);
7. publish the source as Linked Open Data, pivot the graph back into a
   dataset on the columnar LOD tier, and cube the tabulation — the
   tabulated dataset arrives with its encoding pre-seeded, so the whole
   LOD → profile → cube chain encodes it exactly once;
8. persist the encoded source and the published graph to binary store
   files and reopen them as zero-copy memory maps — no re-encoding, with
   every result bit-identical (see docs/store-format.md).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.bi import KPI, Cube, Dimension, Measure, Report, cube_report, evaluate_kpis_by_level
from repro.bi.reporting import dataset_to_table_text
from repro.core import Advisor, ExperimentPlan, ExperimentRunner, UserProfile
from repro.datasets import service_requests
from repro.datasets.civic import CIVIC, civic_lod_graph
from repro.lod.tabulate import tabulate_entities
from repro.mining import CLASSIFIER_REGISTRY, train_test_split
from repro.quality import measure_quality, quality_report
from repro.tabular import read_csv, write_csv


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="openbi-quickstart-"))

    # 1. An open data portal publishes a messy CSV.
    raw = service_requests(n_rows=240, dirty=True)
    csv_path = write_csv(raw, workdir / "service_requests.csv")
    print(f"[1] wrote raw open data to {csv_path}")

    # 1b. Files in the wild are often worse than "dirty" — bytes get mangled
    # in transit.  Simulate that with the seeded corruptors and salvage the
    # file back; the strict reader would refuse it outright.
    from repro.recovery import apply_corruptions, salvage_csv

    corrupted = apply_corruptions(
        csv_path.read_bytes(), {"ragged_rows": 0.05, "encoding": 0.05}, seed=7
    )
    salvaged, salvage_report = salvage_csv(corrupted)
    print("\n[1b] salvaged a byte-corrupted copy of the same file:")
    print("     " + salvage_report.summary().replace("\n", "\n     "))

    # 2. Load it back and measure its data quality.
    source = read_csv(csv_path).set_target("resolved_late").set_role("request_id", "identifier")
    profile = measure_quality(source)
    print("\n[2] data quality of the published source:\n")
    print(quality_report(profile))

    # 3. Build a small knowledge base from controlled experiments on a clean sample.
    clean_sample = service_requests(n_rows=240, seed=11)
    runner = ExperimentRunner(
        profile=UserProfile(name="quickstart", algorithms=("decision_tree", "naive_bayes", "knn"), cv_folds=3),
        plan=ExperimentPlan(criteria=("completeness", "accuracy", "balance"), simple_severities=(0.0, 0.2, 0.4)),
    )
    knowledge_base = runner.run([clean_sample])
    print(f"\n[3] knowledge base built: {len(knowledge_base)} experiment records")

    # 4. Ask the advisor what to mine the dirty source with.
    advisor = Advisor(knowledge_base, k=5)
    recommendation = advisor.advise(source)
    print(f"\n[4] the best option is {recommendation.best_algorithm.upper()}")
    print(f"    {recommendation.rationale}")

    # 5. Follow the advice and report the outcome.
    train, test = train_test_split(source, test_fraction=0.3, seed=0)
    model = CLASSIFIER_REGISTRY[recommendation.best_algorithm]()
    model.fit(train)
    accuracy = model.score(test)
    report = (
        Report("Quickstart: service requests")
        .add_key_values(
            "Advice",
            {
                "recommended algorithm": recommendation.best_algorithm,
                "expected score": f"{recommendation.expected_score:.3f}",
                "achieved holdout accuracy": f"{accuracy:.3f}",
            },
        )
        .add_text("Why", recommendation.rationale)
    )
    print("\n[5] final report\n")
    print(report.render("text"))

    # 6. Serve the source as BI: an OLAP cube plus per-district KPIs.
    cube = Cube(
        source,
        dimensions=[Dimension("district", ("district",)), Dimension("topic", ("topic",))],
        measures=[
            Measure("avg_resolution_days", "resolution_days", "mean"),
            Measure("requests", "resolution_days", "count"),
        ],
    )
    print("\n[6] OLAP cube over the source\n")
    print(cube_report(cube, levels=["topic"]).render("text"))
    scoreboard = evaluate_kpis_by_level(
        [KPI("avg_resolution_days", "resolution_days", target=14.0, higher_is_better=False)],
        cube,
        "district",
    )
    print("\nper-district KPI scoreboard\n")
    print(dataset_to_table_text(scoreboard))

    # 7. Publish as Linked Open Data, pivot the graph back, and cube it.
    graph = civic_lod_graph(source, entity_class="ServiceRequest")
    print(f"\n[7] published the source as LOD: {len(graph)} triples")
    pivoted = tabulate_entities(graph, CIVIC.ServiceRequest)
    lod_cube = Cube(
        pivoted,
        dimensions=[Dimension("topic", ("topic",))],
        measures=[Measure("avg_resolution_days", "resolution_days", "mean")],
    )
    print("    cube over the tabulated LOD graph (columnar tier, one shared encoding):\n")
    print(dataset_to_table_text(lod_cube.rollup("topic")))

    # 8. Persist to the binary store and reopen as memory-mapped views.
    # The reopened dataset arrives with its encoding pre-seeded from the
    # file, so profiling or cubing it skips the encode step entirely —
    # and stays bit-identical to the in-memory original.
    store_path = source.save(workdir / "service_requests.rps")
    reopened = type(source).open(store_path)
    graph_path = graph.save(workdir / "service_requests_lod.rps")
    reopened_graph = type(graph).open(graph_path)
    assert measure_quality(reopened).as_dict() == profile.as_dict()
    assert len(reopened_graph) == len(graph)
    print(f"\n[8] stored and reopened: {store_path.name} "
          f"({store_path.stat().st_size} bytes, profile identical), "
          f"{graph_path.name} ({len(reopened_graph)} triples)")

    # 9. Serve the snapshot over HTTP and watch the result cache work.
    # The same query twice: the first response computes (cache miss), the
    # second replays the identical bytes from the fingerprint-keyed cache
    # (cache hit) without touching the data.  See docs/serving.md.
    import json as _json
    import threading
    import urllib.request

    from repro.serve import CACHE_HEADER, create_server

    server = create_server(stores=[store_path])
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        query = _json.dumps({"criteria": ["completeness", "balance"]}).encode()
        responses = []
        for _ in range(2):
            request = urllib.request.Request(
                server.url + "/profile", data=query,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as reply:
                responses.append((reply.headers[CACHE_HEADER], reply.read()))
        assert responses[0][0] == "miss" and responses[1][0] == "hit"
        assert responses[0][1] == responses[1][1]
        print(f"\n[9] served {store_path.name} at {server.url}: "
              f"first /profile was a cache {responses[0][0]}, "
              f"second a cache {responses[1][0]} with identical bytes")

        # 10. A feed delivers fresh rows overnight: append them (old rows are
        # never re-encoded), refresh the profile in O(|delta|), replace the
        # store atomically and POST /reload — the server swaps snapshots
        # without recomputing anything.  See docs/ingest.md.
        import os

        from repro.feeds import IncrementalProfile

        tracker = IncrementalProfile(reopened, criteria=["completeness", "balance"])
        batch = [dict(reopened.row(i)) for i in range(3)]
        merged = reopened.append_rows(batch)
        refreshed = tracker.refresh(merged)
        assert refreshed.as_dict() == measure_quality(merged, ["completeness", "balance"]).as_dict()
        tmp_path = store_path.with_name(store_path.name + ".tmp")
        merged.save(tmp_path)
        os.replace(tmp_path, store_path)
        reload_request = urllib.request.Request(
            server.url + "/reload",
            data=_json.dumps({"name": store_path.stem}).encode(),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(reload_request, timeout=30) as reply:
            swap = _json.loads(reply.read())
        assert swap["changed"]
        request = urllib.request.Request(
            server.url + "/profile", data=query,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as reply:
            status, body = reply.headers[CACHE_HEADER], reply.read()
        assert status == "miss" and body != responses[0][1]
        print(f"\n[10] ingested {len(batch)} feed rows and reloaded: refresh "
              f"bit-identical to the recompute, served /profile now a cache {status}")
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()


if __name__ == "__main__":
    main()
