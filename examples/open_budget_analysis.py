"""Open budget analysis: OLAP, association rules and a citizen dashboard.

Run with ``python examples/open_budget_analysis.py``.

A citizen wants to understand the municipal budget: which districts and
categories overrun, whether there are systematic patterns, and publish the
findings back as Linked Open Data for others to reuse.
"""

from __future__ import annotations

from repro.bi import Cube, Dashboard, Dimension, KPI, Measure, share_cube_as_lod
from repro.datasets import municipal_budget
from repro.lod import to_turtle
from repro.lod.publish import publish_patterns
from repro.mining import Apriori, dataset_to_transactions
from repro.quality import measure_quality


def main() -> None:
    budget = municipal_budget(n_rows=360, seed=7)

    # OLAP: budget execution by district and category.
    cube = Cube(
        budget,
        dimensions=[
            Dimension("district", ("district",)),
            Dimension("category", ("category",)),
            Dimension("year", ("year",)),
        ],
        measures=[
            Measure("total_budgeted", "budgeted", "sum"),
            Measure("total_executed", "executed", "sum"),
            Measure("mean_execution_rate", "execution_rate", "mean"),
        ],
    )
    by_category = cube.aggregate(["category"])
    print("Budget execution by category:")
    for row in by_category.iter_rows():
        print(
            f"  {row['category']:<12} budgeted {row['total_budgeted'] / 1e6:7.2f} M€   "
            f"executed {row['total_executed'] / 1e6:7.2f} M€   "
            f"rate {row['mean_execution_rate']:.2f}"
        )

    # Association rules over the categorical view of the budget.
    transactions = dataset_to_transactions(
        budget.drop_columns(["line_id", "budgeted", "executed"]), bins=3
    )
    apriori = Apriori(min_support=0.05, min_confidence=0.65).fit(transactions)
    rules = [rule for rule in apriori.rules() if "overrun=yes" in rule.consequent or "overrun=no" in rule.consequent]
    print(f"\nAssociation rules about overruns ({len(rules)} found):")
    for rule in rules[:8]:
        print(f"  {rule.as_text()}")

    # A dashboard for the citizen.
    dashboard = (
        Dashboard("Municipal budget 2008-2011")
        .add_kpi_panel(
            "Key indicators",
            [
                KPI("mean execution rate", "execution_rate", target=1.0, higher_is_better=False, tolerance=0.1),
                KPI("mean budgeted per line (EUR)", "budgeted", target=1_200_000, higher_is_better=False, tolerance=0.5),
            ],
            budget,
        )
        .add_quality_panel("Data quality of the source", measure_quality(budget))
        .add_cube_panel("Execution by district", cube, ["district"])
        .add_table_panel("Execution by category", by_category)
    )
    print("\n" + "=" * 70)
    print(dashboard.render()[:1200] + "\n...")

    # Share the aggregation and the mined rules back as LOD.
    shared = share_cube_as_lod(cube, ["district"])
    shared = publish_patterns([rule.as_dict() for rule in rules[:8]], "municipal-budget", "apriori", graph=shared)
    turtle = to_turtle(shared)
    print("=" * 70)
    print(f"Published {len(shared)} triples back as LOD; Turtle excerpt:\n")
    print("\n".join(turtle.splitlines()[:20]))


if __name__ == "__main__":
    main()
