"""EXP-LOD-PIPELINE — §3.2: common representation + data quality annotation of LOD.

A civic dataset is published as LOD, pivoted back into a table, modelled with
the CWM-like metamodel and annotated with its measured quality profile.  The
benchmark reports how the pipeline scales with the number of entities and how
much of the wall-clock time each stage takes.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.datasets import air_quality, civic_lod_graph
from repro.datasets.civic import CIVIC
from repro.lod.tabulate import tabulate_entities
from repro.metamodel import annotate_quality, model_from_lod, model_to_xmi, read_quality_annotations
from repro.quality import measure_quality

SIZES = (50, 150, 300)


def run_pipeline(n_rows: int) -> dict[str, float]:
    timings: dict[str, float] = {}
    start = time.perf_counter()
    dataset = air_quality(n_rows=n_rows, seed=1)
    graph = civic_lod_graph(dataset, entity_class="AirQualityReading")
    timings["publish_s"] = time.perf_counter() - start

    start = time.perf_counter()
    table = tabulate_entities(graph, CIVIC.AirQualityReading)
    timings["tabulate_s"] = time.perf_counter() - start

    start = time.perf_counter()
    catalog = model_from_lod(graph)
    timings["model_s"] = time.perf_counter() - start

    start = time.perf_counter()
    profile = measure_quality(table)
    annotate_quality(catalog.find_table("AirQualityReading"), profile)
    timings["annotate_s"] = time.perf_counter() - start

    xmi = model_to_xmi(catalog)
    scores = read_quality_annotations(catalog.find_table("AirQualityReading"))
    return {
        "n_entities": float(n_rows),
        "n_triples": float(len(graph)),
        "n_columns": float(table.n_columns),
        "overall_quality": scores["overall"],
        "xmi_lines": float(len(xmi.splitlines())),
        **timings,
    }


@pytest.mark.benchmark(group="lod")
def test_lod_representation_pipeline(benchmark):
    def run_all():
        return [run_pipeline(size) for size in SIZES]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "EXP-LOD-PIPELINE: LOD -> common representation -> annotated quality (scaling)",
        list(results[0].keys()),
        [list(result.values()) for result in results],
    )
    # Triples scale linearly with entities; quality annotations survive the round trip.
    assert results[-1]["n_triples"] > results[0]["n_triples"]
    assert all(0.0 <= result["overall_quality"] <= 1.0 for result in results)
    benchmark.extra_info["largest_graph_triples"] = results[-1]["n_triples"]
