"""EXP-ADVISOR — ranking quality of the knowledge-base advisor.

For a set of unseen degraded sources the advisor's predicted ranking of the
candidate algorithms is compared against the actually measured ranking.
Expected shape: the advisor's top choice lands in the measured top-2 for most
sources, and its predicted scores correlate positively with the achieved ones.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FAST_ALGORITHMS, print_table
from repro.core import Advisor, apply_injections
from repro.datasets import make_classification_dataset
from repro.mining import CLASSIFIER_REGISTRY, cross_validate
from repro.tabular.stats import spearman

DEGRADATIONS = [
    {"completeness": 0.45},
    {"accuracy": 0.35},
    {"balance": 0.85},
    {"completeness": 0.25, "dimensionality": 0.6},
]


def run_ranking_study(knowledge_base):
    advisor = Advisor(knowledge_base, k=7)
    rows = []
    top2_hits = 0
    correlations = []
    for index, injections in enumerate(DEGRADATIONS):
        unseen = make_classification_dataset(n_rows=130, n_numeric=4, n_categorical=2, seed=900 + index)
        dirty = apply_injections(unseen, injections, seed=index)
        recommendation = advisor.advise(dirty)
        predicted = dict(recommendation.ranked_algorithms)
        actual = {
            name: cross_validate(CLASSIFIER_REGISTRY[name], dirty, k=3).accuracy for name in FAST_ALGORITHMS
        }
        actual_ranking = sorted(actual, key=actual.get, reverse=True)
        in_top2 = recommendation.best_algorithm in actual_ranking[:2]
        top2_hits += int(in_top2)
        correlation = spearman(
            [predicted[name] for name in FAST_ALGORITHMS], [actual[name] for name in FAST_ALGORITHMS]
        )
        correlations.append(correlation)
        rows.append(
            [
                "+".join(injections),
                recommendation.best_algorithm,
                actual_ranking[0],
                "yes" if in_top2 else "no",
                correlation,
            ]
        )
    return rows, top2_hits, correlations


@pytest.mark.benchmark(group="advisor")
def test_advisor_ranking_quality(benchmark, bench_knowledge_base):
    rows, top2_hits, correlations = benchmark.pedantic(
        run_ranking_study, args=(bench_knowledge_base,), rounds=1, iterations=1
    )
    print_table(
        "EXP-ADVISOR: predicted vs measured best algorithm per degraded source",
        ["degradation", "advised", "actual_best", "advised_in_top2", "rank_correlation"],
        rows,
    )
    benchmark.extra_info["top2_hit_rate"] = top2_hits / len(rows)
    benchmark.extra_info["mean_rank_correlation"] = sum(correlations) / len(correlations)
    assert top2_hits >= len(rows) - 1, "the advisor's choice should almost always be in the measured top 2"
