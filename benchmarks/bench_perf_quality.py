"""BENCH-PERF-QUALITY — encoded-core data-quality profiling timings.

Times ``measure_quality`` — the profiling stage the advisor runs on every
incoming dataset — over a mixed-type dataset (numeric, categorical, boolean,
datetime and free-text columns, with injected missing values and fuzzy
near-duplicates) at 10k rows, for both execution paths: the vectorized
``_measure_encoded`` criteria over the shared encoded views, and the retained
row-at-a-time reference path (forced via ``_force_row_measure``).  The
encoded timings include encoding the dataset from scratch (the instance cache
is dropped before every run), so the speedup is what a cold ``advise`` call
actually sees; per-criterion timings are recorded so regressions can be
attributed.  Results — speedups plus a bit-identity check of the resulting
profiles — are written to ``BENCH_perf_quality.json`` at the repository root.

The JSON also records a ``quick`` section at a reduced size, used by the CI
perf guard: ``python benchmarks/bench_perf_quality.py --quick`` reruns it and
fails when the overall encoded/row speedup drops below half the recorded
baseline (ratios, not wall-clock, so slower CI runners don't false-alarm) or
when the encoded profile stops being bit-identical to the row profile.

Run the full benchmark with ``pytest benchmarks/bench_perf_quality.py -s`` or
directly with ``python benchmarks/bench_perf_quality.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.injection import DuplicateInjector, MissingValuesInjector
from repro.datasets import make_classification_dataset
from repro.quality import get_criterion, measure_quality
from repro.quality.profile import DEFAULT_CRITERIA
from repro.tabular.dataset import Column, ColumnType, Dataset
from repro.tabular.encoded import _CACHE_ATTR, encode_dataset

PROFILE_ROWS = 10_000
#: The acceptance bar: the encoded profile at 10k rows must be at least this
#: many times faster than the row-at-a-time path.
MIN_SPEEDUP_AT_10K = 5.0

#: Reduced-size rerun used by the CI perf guard (see ``--quick``).
QUICK_ROWS = 2_000
#: The quick case fails the guard when its overall speedup drops below
#: ``baseline_speedup / QUICK_REGRESSION_FACTOR``.
QUICK_REGRESSION_FACTOR = 2.0

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_quality.json"


def _dataset(n_rows: int) -> Dataset:
    """A dirty mixed-type source of ``n_rows`` rows."""
    base = make_classification_dataset(n_rows=n_rows, n_numeric=4, n_categorical=2, seed=0)
    rng = np.random.default_rng(1)
    base = base.add_column(
        Column("flag", rng.choice([True, False], size=n_rows).tolist(), ctype=ColumnType.BOOLEAN)
    )
    base = base.add_column(
        Column("day", [f"2024-0{(i % 9) + 1}-1{i % 10}" for i in range(n_rows)], ctype=ColumnType.DATETIME)
    )
    base = base.add_column(
        Column(
            "note",
            [f"Observation  #{i % 211}" if i % 3 else f"observation #{i % 211}" for i in range(n_rows)],
            ctype=ColumnType.STRING,
        )
    )
    base = DuplicateInjector(fuzzy=True).apply(base, 0.1, seed=2)
    return MissingValuesInjector().apply(base, 0.1, seed=3)


def _drop_encoding(dataset: Dataset) -> None:
    """Forget the dataset's cached encoding so the next run pays for it."""
    if hasattr(dataset, _CACHE_ATTR):
        delattr(dataset, _CACHE_ATTR)


def _row_criteria():
    criteria = []
    for name in DEFAULT_CRITERIA:
        criterion = get_criterion(name)
        criterion._force_row_measure = True
        criteria.append(criterion)
    return criteria


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; return its last value and the best wall time."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def _profiles_identical(fast, slow) -> bool:
    return (
        list(fast.as_vector(DEFAULT_CRITERIA)) == list(slow.as_vector(DEFAULT_CRITERIA))
        and fast.to_json_dict() == slow.to_json_dict()
    )


def _compare_paths(dataset: Dataset, repeats: int = 1) -> dict:
    """Time the encoded vs row profile of one dataset and check identity."""

    def encoded_run():
        _drop_encoding(dataset)
        return measure_quality(dataset)

    fast, fast_s = _timed(encoded_run, repeats)
    slow, slow_s = _timed(lambda: measure_quality(dataset, criteria=_row_criteria()), repeats)

    per_criterion: dict[str, dict] = {}
    encoded = encode_dataset(dataset)
    for name in DEFAULT_CRITERIA:
        _, criterion_fast_s = _timed(lambda: get_criterion(name).measure_encoded(encoded), repeats)
        _, criterion_slow_s = _timed(lambda: get_criterion(name).measure(dataset), repeats)
        per_criterion[name] = {
            "encoded_s": criterion_fast_s,
            "row_s": criterion_slow_s,
            "speedup": criterion_slow_s / criterion_fast_s if criterion_fast_s > 0 else float("inf"),
        }

    return {
        "encoded_profile_s": fast_s,
        "row_profile_s": slow_s,
        "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
        "identical_to_row_path": _profiles_identical(fast, slow),
        "per_criterion": per_criterion,
    }


def run_quick_case() -> dict:
    return _compare_paths(_dataset(QUICK_ROWS), repeats=3)


def run_benchmark() -> dict:
    results: dict = {"sizes": {}}
    dataset = _dataset(PROFILE_ROWS)
    results["sizes"][str(PROFILE_ROWS)] = _compare_paths(dataset)
    results["quick"] = {"n_rows": QUICK_ROWS, **run_quick_case()}
    return results


def write_results(results: dict) -> Path:
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return _RESULT_PATH


def _print_results(results: dict) -> None:
    try:
        from benchmarks.conftest import print_table
    except ModuleNotFoundError:  # running as a plain script
        def print_table(title, header, rows):
            print(f"\n=== {title} ===")
            print("  ".join(header))
            for row in rows:
                print("  ".join(f"{c:.3f}" if isinstance(c, float) else str(c) for c in row))

    rows = []
    for n_rows, entry in results["sizes"].items():
        rows.append(
            [
                f"measure_quality@{n_rows}",
                entry["encoded_profile_s"],
                entry["row_profile_s"],
                entry["speedup"],
                "yes" if entry["identical_to_row_path"] else "NO",
            ]
        )
        for name, stats in entry["per_criterion"].items():
            rows.append([f"  {name}@{n_rows}", stats["encoded_s"], stats["row_s"], stats["speedup"], ""])
    print_table(
        "BENCH-PERF-QUALITY: data-quality profiling, encoded vs row path",
        ["workload", "encoded_s", "row_s", "speedup", "identical"],
        rows,
    )


def run_quick_guard(baseline_path: Path = _RESULT_PATH) -> int:
    """Rerun the quick case and compare against the recorded baseline.

    Returns a process exit code: 0 when the profile is still bit-identical
    and within ``QUICK_REGRESSION_FACTOR`` of its recorded speedup, 1
    otherwise.
    """
    if not baseline_path.exists():
        print(f"perf guard: no baseline at {baseline_path}; run the full benchmark first")
        return 1
    baseline = json.loads(baseline_path.read_text())
    quick = baseline.get("quick", {})
    if "speedup" not in quick:
        print("perf guard: baseline is missing the quick case; rerun the full benchmark")
        return 1
    if quick.get("n_rows") != QUICK_ROWS:
        print(
            f"perf guard: baseline quick size {quick.get('n_rows')} != {QUICK_ROWS}; "
            "rerun the full benchmark"
        )
        return 1
    current = run_quick_case()
    floor = quick["speedup"] / QUICK_REGRESSION_FACTOR
    verdict = "ok"
    if not current["identical_to_row_path"]:
        verdict = "DIVERGED from row path"
    elif current["speedup"] < floor:
        verdict = f"REGRESSED (floor {floor:.1f}x)"
    print(
        f"perf guard: measure_quality@{QUICK_ROWS}: {current['speedup']:.1f}x "
        f"(baseline {quick['speedup']:.1f}x) {verdict}"
    )
    if verdict != "ok":
        print("perf guard: FAILED for measure_quality")
        return 1
    print("perf guard: quality profiling within budget")
    return 0


def test_perf_quality():
    results = run_benchmark()
    path = write_results(results)
    _print_results(results)
    for n_rows, entry in results["sizes"].items():
        assert entry["identical_to_row_path"], (
            f"measure_quality@{n_rows}: encoded profile diverged from the row-at-a-time path"
        )
    at_10k = results["sizes"][str(PROFILE_ROWS)]["speedup"]
    assert at_10k >= MIN_SPEEDUP_AT_10K, (
        f"profiling speedup at {PROFILE_ROWS} rows is {at_10k:.1f}x, "
        f"below the {MIN_SPEEDUP_AT_10K}x bar"
    )
    print(f"\nresults written to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="rerun the reduced-size perf-guard case against the recorded baseline",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run_quick_guard()
    test_perf_quality()
    return 0


if __name__ == "__main__":
    sys.exit(main())
