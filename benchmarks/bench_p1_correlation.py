"""EXP-P1-CORRELATION — Phase 1, correlated-attributes criterion.

This is the paper's own example: strongly correlated input attributes produce
patterns that are "correct" but less useful.  Redundant near-copies of the
numeric features are injected; the benchmark reports (a) classifier accuracy —
which barely moves — and (b) the number and redundancy of association rules —
which inflates — plus the measured correlation criterion that flags the
problem to the advisor.
"""

from __future__ import annotations

import pytest

from benchmarks._sweep import sensitivity_sweep, sweep_rows
from benchmarks.conftest import FAST_ALGORITHMS, print_table, reference_dataset
from repro.core.injection import CorrelatedAttributesInjector
from repro.mining import Apriori, dataset_to_transactions
from repro.quality import CorrelationCriterion

SEVERITIES = (0.0, 0.3, 0.6, 1.0)


def run_experiment():
    dataset = reference_dataset()
    classification = sensitivity_sweep(dataset, "correlation", SEVERITIES, FAST_ALGORITHMS)
    injector = CorrelatedAttributesInjector()
    criterion = CorrelationCriterion()
    rule_rows = []
    for severity in SEVERITIES:
        degraded = dataset if severity == 0.0 else injector.apply(dataset, severity, seed=3)
        transactions = dataset_to_transactions(degraded, bins=3)
        rules = Apriori(min_support=0.15, min_confidence=0.7, max_itemset_size=3).fit(transactions).rules()
        measured = criterion.measure(degraded)
        rule_rows.append(
            [
                f"severity={severity:.1f}",
                float(degraded.n_columns),
                float(len(rules)),
                measured.score,
                float(len(measured.details["redundant_pairs"])),
            ]
        )
    return classification, rule_rows


@pytest.mark.benchmark(group="phase1")
def test_p1_correlation(benchmark):
    classification, rule_rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "EXP-P1-CORRELATION: classifier accuracy vs injected redundancy",
        ["algorithm"] + [f"severity={s:.1f}" for s in SEVERITIES],
        sweep_rows(classification),
    )
    print_table(
        "EXP-P1-CORRELATION: association rules and measured correlation criterion",
        ["variant", "n_columns", "n_rules", "correlation_score", "redundant_pairs"],
        rule_rows,
    )

    # The measured correlation criterion must flag the injected redundancy…
    assert rule_rows[-1][3] < rule_rows[0][3]
    assert rule_rows[-1][4] > rule_rows[0][4]
    # …and the rule set inflates (more redundant patterns for the user to wade through).
    assert rule_rows[-1][2] >= rule_rows[0][2]
    # Classifier accuracy moves comparatively little: the patterns stay "correct".
    for algorithm in FAST_ALGORITHMS:
        drop = classification[algorithm][0.0] - classification[algorithm][max(SEVERITIES)]
        assert drop < 0.25
    benchmark.extra_info["rule_inflation"] = rule_rows[-1][2] - rule_rows[0][2]
