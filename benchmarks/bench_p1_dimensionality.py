"""EXP-P1-DIMENSIONALITY — Phase 1, high-dimensionality criterion.

Irrelevant attributes are added to emulate a wide LOD tabulation; three
strategies are compared — mining the raw wide data, PCA reduction, and
information-gain feature selection (which preserves the original attributes
and therefore the data structure the paper cares about).  Expected shape: k-NN
suffers most from added dimensions, and both reduction strategies recover part
of the loss, with selection keeping interpretable attributes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, reference_dataset
from repro.core.injection import IrrelevantAttributesInjector
from repro.mining import (
    CLASSIFIER_REGISTRY,
    PCATransformer,
    cross_validate,
    select_features,
)

ALGORITHMS = ("decision_tree", "naive_bayes", "knn")
ADDED = (0, 20, 60)


def run_experiment():
    dataset = reference_dataset()
    injector = IrrelevantAttributesInjector(max_added=max(ADDED))
    n_original_features = len(dataset.feature_columns())
    rows = []
    for added in ADDED:
        severity = added / max(ADDED)
        wide = dataset if added == 0 else injector.apply(dataset, severity, seed=2)
        variants = {
            "raw": wide,
            "pca": PCATransformer(n_components=n_original_features).fit_transform(wide),
            "select": select_features(wide, k=n_original_features),
        }
        for strategy, variant in variants.items():
            for algorithm in ALGORITHMS:
                accuracy = cross_validate(CLASSIFIER_REGISTRY[algorithm], variant, k=3).accuracy
                rows.append([added, strategy, algorithm, accuracy])
    return rows


@pytest.mark.benchmark(group="phase1")
def test_p1_dimensionality(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "EXP-P1-DIMENSIONALITY: accuracy by added irrelevant attributes and reduction strategy",
        ["added_dims", "strategy", "algorithm", "accuracy"],
        rows,
    )

    def accuracy_of(added, strategy, algorithm):
        return next(r[3] for r in rows if r[0] == added and r[1] == strategy and r[2] == algorithm)

    # k-NN on raw data degrades as dimensions are added.
    assert accuracy_of(max(ADDED), "raw", "knn") <= accuracy_of(0, "raw", "knn") + 0.02
    # Feature selection on the widest variant is at least as good as raw k-NN.
    assert accuracy_of(max(ADDED), "select", "knn") >= accuracy_of(max(ADDED), "raw", "knn") - 0.05
    knn_drop_raw = accuracy_of(0, "raw", "knn") - accuracy_of(max(ADDED), "raw", "knn")
    knn_drop_select = accuracy_of(0, "select", "knn") - accuracy_of(max(ADDED), "select", "knn")
    benchmark.extra_info["knn_drop_raw"] = knn_drop_raw
    benchmark.extra_info["knn_drop_select"] = knn_drop_select
