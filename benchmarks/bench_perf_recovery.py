"""BENCH-PERF-RECOVERY — salvage-tier overhead and recovery rates.

The recovery tier (:mod:`repro.recovery`) promises two things: on **clean**
input it produces the bit-identical dataset/graph of the strict reference
readers at a modest constant-factor overhead, and on **corrupt** input it
recovers a predictable fraction of the payload instead of raising.  This
benchmark measures both promises:

* *clean overhead* — ``salvage_csv_text`` vs ``read_csv_text`` and
  ``salvage_ntriples`` vs ``parse_ntriples`` on clean 10k-row CSV / 10k-line
  N-Triples payloads, reporting the overhead ratio (salvage time over strict
  time) and asserting the outputs identical;
* *recovery sweep* — the seeded corruptors of :mod:`repro.recovery.corrupt`
  damage the same payloads at severities 0.1 / 0.3 / 0.6; the sweep records
  the deterministic cell/line recovery rates and row yields, and asserts the
  corrupt → salvage → profile round trip never raises.

Results are written to ``BENCH_perf_recovery.json`` at the repository root.
The JSON also records a ``quick`` section at a reduced size, used by the CI
perf guard: ``python benchmarks/bench_perf_recovery.py --quick`` reruns it
and fails when a clean salvage stops being identical to the strict reader,
when the clean-overhead ratio exceeds twice the recorded baseline (ratios,
not wall-clock, so slower CI runners don't false-alarm), when any recovery
rate drifts from the recorded deterministic value, or when the sweep raises.

Run the full benchmark with ``pytest benchmarks/bench_perf_recovery.py -s``
or directly with ``python benchmarks/bench_perf_recovery.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.datasets import make_classification_dataset
from repro.lod.publish import publish_dataset
from repro.lod.serialization import parse_ntriples, to_ntriples
from repro.quality import measure_quality
from repro.recovery import apply_corruptions, salvage_csv, salvage_csv_text, salvage_ntriples
from repro.tabular.io_csv import read_csv_text, write_csv_text

CSV_ROWS = 10_000
NT_ROWS = 1_000
#: The acceptance bar: clean-input salvage must cost at most this multiple of
#: the strict reader (it does strictly more bookkeeping, so > 1 is expected).
MAX_CLEAN_OVERHEAD = 5.0
#: Severities of the seeded corruption sweep.
SWEEP_SEVERITIES = (0.1, 0.3, 0.6)
SWEEP_SEED = 0

#: Reduced-size rerun used by the CI perf guard (see ``--quick``).
QUICK_CSV_ROWS = 2_000
QUICK_NT_ROWS = 300
#: The quick case fails the guard when its clean-overhead ratio exceeds
#: ``baseline_overhead * QUICK_REGRESSION_FACTOR``.
QUICK_REGRESSION_FACTOR = 2.0
#: Recovery rates are fully deterministic (seeded corruption, deterministic
#: salvage); the guard allows only float-noise drift.
RATE_TOLERANCE = 1e-9

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_recovery.json"


def _csv_payload(n_rows: int) -> str:
    """Clean CSV text of ``n_rows`` mixed-type rows."""
    dataset = make_classification_dataset(n_rows=n_rows, n_numeric=4, n_categorical=2, seed=0)
    return write_csv_text(dataset)


def _nt_payload(n_rows: int) -> str:
    """Clean N-Triples text describing ``n_rows`` published entities."""
    dataset = make_classification_dataset(n_rows=n_rows, n_numeric=2, n_categorical=1, seed=0)
    return to_ntriples(publish_dataset(dataset))


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; return its last value and the best wall time."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def _clean_overhead(csv_text: str, nt_text: str, repeats: int = 1) -> dict:
    """Time salvage vs strict on clean payloads and check identity."""
    strict_ds, strict_csv_s = _timed(lambda: read_csv_text(csv_text), repeats)
    salvage_result, salvage_csv_s = _timed(lambda: salvage_csv_text(csv_text), repeats)
    csv_identical = salvage_result.dataset == strict_ds and salvage_result.report.is_clean

    strict_graph, strict_nt_s = _timed(lambda: parse_ntriples(nt_text), repeats)
    nt_result, salvage_nt_s = _timed(lambda: salvage_ntriples(nt_text), repeats)
    nt_identical = (
        to_ntriples(nt_result.graph) == to_ntriples(strict_graph) and nt_result.report.is_clean
    )

    return {
        "csv": {
            "strict_s": strict_csv_s,
            "salvage_s": salvage_csv_s,
            "overhead": salvage_csv_s / strict_csv_s if strict_csv_s > 0 else float("inf"),
            "identical_to_strict": csv_identical,
        },
        "ntriples": {
            "strict_s": strict_nt_s,
            "salvage_s": salvage_nt_s,
            "overhead": salvage_nt_s / strict_nt_s if strict_nt_s > 0 else float("inf"),
            "identical_to_strict": nt_identical,
        },
    }


def _csv_sweep_case(csv_text: str, severity: float) -> dict:
    """Corrupt → salvage → profile one CSV payload at one severity."""
    n_clean_rows = read_csv_text(csv_text).n_rows
    corrupted = apply_corruptions(
        csv_text.encode(),
        {
            "ragged_rows": severity,
            "quotes": severity * 0.5,
            "newlines": severity * 0.5,
            "encoding": severity * 0.5,
        },
        seed=SWEEP_SEED,
    )
    dataset, report = salvage_csv(corrupted)
    measure_quality(dataset)  # the round trip must always profile cleanly
    return {
        "severity": severity,
        "cell_recovery_rate": report.cell_recovery_rate,
        "row_yield": dataset.n_rows / n_clean_rows,
        "encoding": report.encoding,
        "n_events": report.n_events,
    }


def _nt_sweep_case(nt_text: str, severity: float) -> dict:
    """Corrupt → salvage one N-Triples payload at one severity."""
    corrupted = apply_corruptions(
        nt_text.encode(),
        {"nt_dots": severity, "nt_garbage": severity * 0.5},
        seed=SWEEP_SEED,
    )
    _, report = salvage_ntriples(corrupted.decode("utf-8", errors="replace"))
    return {
        "severity": severity,
        "line_recovery_rate": report.line_recovery_rate,
        "n_repaired": report.n_repaired,
        "n_skipped": report.n_skipped,
    }


def _recovery_sweep(csv_text: str, nt_text: str) -> dict:
    """Deterministic recovery rates across the severity sweep."""
    return {
        "csv": [_csv_sweep_case(csv_text, severity) for severity in SWEEP_SEVERITIES],
        "ntriples": [_nt_sweep_case(nt_text, severity) for severity in SWEEP_SEVERITIES],
    }


def run_quick_case() -> dict:
    """The reduced-size case the CI perf guard reruns."""
    csv_text = _csv_payload(QUICK_CSV_ROWS)
    nt_text = _nt_payload(QUICK_NT_ROWS)
    return {
        "clean_overhead": _clean_overhead(csv_text, nt_text, repeats=3),
        "recovery_sweep": _recovery_sweep(csv_text, nt_text),
    }


def run_benchmark() -> dict:
    """Full benchmark: clean overhead + recovery sweep at full and quick sizes."""
    csv_text = _csv_payload(CSV_ROWS)
    nt_text = _nt_payload(NT_ROWS)
    results: dict = {
        "sizes": {
            f"csv={CSV_ROWS},nt={NT_ROWS}": {
                "clean_overhead": _clean_overhead(csv_text, nt_text),
                "recovery_sweep": _recovery_sweep(csv_text, nt_text),
            }
        }
    }
    results["quick"] = {
        "csv_rows": QUICK_CSV_ROWS,
        "nt_rows": QUICK_NT_ROWS,
        **run_quick_case(),
    }
    return results


def write_results(results: dict) -> Path:
    """Write the benchmark JSON next to the other ``BENCH_*.json`` baselines."""
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return _RESULT_PATH


def _print_results(results: dict) -> None:
    """Render the benchmark as the shared fixed-width table."""
    try:
        from benchmarks.conftest import print_table
    except ModuleNotFoundError:  # running as a plain script
        def print_table(title, header, rows):
            print(f"\n=== {title} ===")
            print("  ".join(header))
            for row in rows:
                print("  ".join(f"{c:.3f}" if isinstance(c, float) else str(c) for c in row))

    rows = []
    for label, entry in results["sizes"].items():
        for fmt in ("csv", "ntriples"):
            stats = entry["clean_overhead"][fmt]
            rows.append(
                [
                    f"clean {fmt} ({label})",
                    stats["strict_s"],
                    stats["salvage_s"],
                    stats["overhead"],
                    "yes" if stats["identical_to_strict"] else "NO",
                ]
            )
    print_table(
        "BENCH-PERF-RECOVERY: salvage vs strict on clean input",
        ["workload", "strict_s", "salvage_s", "overhead", "identical"],
        rows,
    )
    sweep_rows = []
    for label, entry in results["sizes"].items():
        for case in entry["recovery_sweep"]["csv"]:
            sweep_rows.append(
                ["csv", case["severity"], case["cell_recovery_rate"], case["row_yield"]]
            )
        for case in entry["recovery_sweep"]["ntriples"]:
            sweep_rows.append(
                ["ntriples", case["severity"], case["line_recovery_rate"], ""]
            )
    print_table(
        "BENCH-PERF-RECOVERY: recovery rates across the corruption sweep",
        ["format", "severity", "recovery_rate", "row_yield"],
        sweep_rows,
    )


def _sweep_rates(sweep: dict) -> list[tuple[str, float, float]]:
    """Flatten a sweep into comparable (format, severity, rate) triples."""
    rates = [
        ("csv", case["severity"], case["cell_recovery_rate"]) for case in sweep["csv"]
    ]
    rates += [
        ("ntriples", case["severity"], case["line_recovery_rate"])
        for case in sweep["ntriples"]
    ]
    return rates


def run_quick_guard(baseline_path: Path = _RESULT_PATH) -> int:
    """Rerun the quick case and compare against the recorded baseline.

    Returns a process exit code: 0 when clean salvage is still identical to
    the strict readers, the clean-overhead ratios stay within
    ``QUICK_REGRESSION_FACTOR`` of their recorded baselines and the
    deterministic recovery rates have not drifted; 1 otherwise.
    """
    if not baseline_path.exists():
        print(f"perf guard: no baseline at {baseline_path}; run the full benchmark first")
        return 1
    baseline = json.loads(baseline_path.read_text())
    quick = baseline.get("quick", {})
    if "clean_overhead" not in quick:
        print("perf guard: baseline is missing the quick case; rerun the full benchmark")
        return 1
    if quick.get("csv_rows") != QUICK_CSV_ROWS or quick.get("nt_rows") != QUICK_NT_ROWS:
        print(
            f"perf guard: baseline quick sizes {quick.get('csv_rows')}/{quick.get('nt_rows')} "
            f"!= {QUICK_CSV_ROWS}/{QUICK_NT_ROWS}; rerun the full benchmark"
        )
        return 1
    try:
        current = run_quick_case()
    except Exception as exc:  # noqa: BLE001 - the guard reports, CI fails
        print(f"perf guard: corrupt -> salvage -> profile round trip raised: {exc!r}")
        return 1

    failures = []
    for fmt in ("csv", "ntriples"):
        now = current["clean_overhead"][fmt]
        base = quick["clean_overhead"][fmt]
        ceiling = base["overhead"] * QUICK_REGRESSION_FACTOR
        if not now["identical_to_strict"]:
            failures.append(f"clean {fmt} salvage DIVERGED from the strict reader")
        elif now["overhead"] > ceiling:
            failures.append(
                f"clean {fmt} overhead {now['overhead']:.2f}x exceeds ceiling {ceiling:.2f}x "
                f"(baseline {base['overhead']:.2f}x)"
            )
        else:
            print(
                f"perf guard: clean {fmt} overhead {now['overhead']:.2f}x "
                f"(baseline {base['overhead']:.2f}x, ceiling {ceiling:.2f}x) ok"
            )
    for (fmt, severity, now_rate), (_, _, base_rate) in zip(
        _sweep_rates(current["recovery_sweep"]), _sweep_rates(quick["recovery_sweep"])
    ):
        if abs(now_rate - base_rate) > RATE_TOLERANCE:
            failures.append(
                f"{fmt} recovery rate at severity {severity} drifted: "
                f"{now_rate:.6f} != recorded {base_rate:.6f}"
            )
        else:
            print(f"perf guard: {fmt} recovery rate at severity {severity}: {now_rate:.4f} ok")
    if failures:
        for failure in failures:
            print(f"perf guard: {failure}")
        print("perf guard: FAILED for recovery")
        return 1
    print("perf guard: recovery tier within budget")
    return 0


def test_perf_recovery():
    """Full benchmark as a pytest: asserts identity and the overhead bar."""
    results = run_benchmark()
    path = write_results(results)
    _print_results(results)
    for label, entry in results["sizes"].items():
        for fmt in ("csv", "ntriples"):
            stats = entry["clean_overhead"][fmt]
            assert stats["identical_to_strict"], (
                f"clean {fmt} salvage ({label}) diverged from the strict reader"
            )
            assert stats["overhead"] <= MAX_CLEAN_OVERHEAD, (
                f"clean {fmt} salvage overhead ({label}) is {stats['overhead']:.1f}x, "
                f"above the {MAX_CLEAN_OVERHEAD}x bar"
            )
        for case in entry["recovery_sweep"]["csv"]:
            assert case["cell_recovery_rate"] > 0.5, case
        for case in entry["recovery_sweep"]["ntriples"]:
            assert case["line_recovery_rate"] > 0.3, case
    print(f"\nresults written to {path}")


def main(argv: list[str] | None = None) -> int:
    """Entry point: full benchmark by default, ``--quick`` for the CI guard."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="rerun the reduced-size perf-guard case against the recorded baseline",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run_quick_guard()
    test_perf_recovery()
    return 0


if __name__ == "__main__":
    sys.exit(main())
