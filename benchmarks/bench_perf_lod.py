"""BENCH-PERF-LOD — columnar Linked-Open-Data tier timings.

Times the three LOD hot paths on both execution tiers — the vectorized
columnar tier (interned id arrays, ``searchsorted`` joins, blocked linking,
direct-to-encoded column assembly) and the retained dict-index / pairwise
reference tier (``select(..., force_row=True)``, ``_force_pairwise_link``,
``tabulate_entities(..., force_row=True)``):

``select``
    A query session — five rounds of a four-query SPARQL-like batch — over
    a sensor-reading graph at 50k triples, including a three-pattern join
    from readings through their station to its district.  The columnar
    timing starts cold: the interned snapshot is dropped first and rebuilt
    inside the measurement, then amortised over the session like any real
    sequence of queries against a loaded graph.
``linker``
    ``EntityLinker.link`` between two city registries of 2 500 resources
    each (5k entities total) with one fuzzy name rule.
``tabulate``
    ``tabulate_entities`` of the 50k-triple reading graph into a dataset
    **through** its encoded views (every column's missing/codes/float view
    materialised) — the shape the paper's pipeline consumes next, and what
    the columnar tier's direct-to-encoded pre-seeding optimises.  Cold:
    the snapshot is dropped before every run.

Results — speedups plus bit-identity checks (bindings incl. row order, link
sets and float-bit scores, tabulated cells and column order) — are written
to ``BENCH_perf_lod.json`` at the repository root.  The JSON also records a
``quick`` section at reduced sizes used by the CI perf guard:
``python benchmarks/bench_perf_lod.py --quick`` reruns it and fails when a
guarded workload's speedup drops below half the recorded baseline (ratios,
not wall-clock) or when any columnar result diverges from the reference.

Run the full benchmark with ``pytest benchmarks/bench_perf_lod.py -s`` or
directly with ``python benchmarks/bench_perf_lod.py``.
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import time
from pathlib import Path

import numpy as np

from repro.lod.graph import Graph
from repro.lod.linker import EntityLinker, LinkRule
from repro.lod.query import TriplePattern, Variable, select
from repro.lod.terms import Literal
from repro.lod.tabulate import tabulate_entities
from repro.lod.vocabulary import Namespace, RDF

EX = Namespace("http://openbi.example.org/bench/")

#: Triple count of the reading graph used by the select and tabulate workloads.
GRAPH_TRIPLES = 50_000
#: Rounds of the query batch per timed select session.
SELECT_ROUNDS = 5
#: Entities per side of the linker workload (5k entities in total).
LINKER_ENTITIES_PER_SIDE = 2_500
#: The acceptance bar: blocked linking at 5k entities must be at least this
#: many times faster than the pairwise reference.
MIN_LINKER_SPEEDUP_AT_5K = 5.0

#: Reduced sizes for the CI perf guard (see ``--quick``).
QUICK_TRIPLES = 8_000
QUICK_LINKER_PER_SIDE = 300
#: A quick workload fails the guard when its speedup drops below
#: ``baseline_speedup / QUICK_REGRESSION_FACTOR``.
QUICK_REGRESSION_FACTOR = 2.0
#: Workloads the guard checks for speedup regressions (identity is always
#: checked on all three).
GUARDED_WORKLOADS = ("select", "linker", "tabulate")

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_lod.json"

_DISTRICTS = [f"district_{i:02d}" for i in range(12)]
_WORDS = ["rio", "san", "villa", "puerto", "nueva", "alta", "baja", "gran", "monte", "costa"]


def _reading_graph(n_triples: int) -> Graph:
    """A sensor-reading graph: stations with districts, readings with values.

    Each reading contributes ~6 triples, each station ~3, so ``n_triples``
    controls the overall graph size.
    """
    rng = np.random.default_rng(0)
    graph = Graph("http://openbi.example.org/bench/graph")
    n_stations = max(10, n_triples // 500)
    for i in range(n_stations):
        graph.add_resource(
            EX[f"station/{i}"],
            rdf_type=EX.Station,
            properties={EX.district: Literal(_DISTRICTS[i % len(_DISTRICTS)])},
            label=f"Station {i}",
        )
    n_readings = max(1, (n_triples - len(graph)) // 6)
    stations = rng.integers(n_stations, size=n_readings)
    months = rng.integers(1, 13, size=n_readings)
    no2 = np.round(rng.uniform(5, 90, size=n_readings), 1)
    pm10 = np.round(rng.uniform(5, 60, size=n_readings), 1)
    alerts = rng.random(n_readings) < 0.1
    for i in range(n_readings):
        subject = EX[f"reading/{i}"]
        graph.add(subject, RDF.type, EX.Reading)
        graph.add(subject, EX.station, EX[f"station/{stations[i]}"])
        graph.add(subject, EX.month, Literal(int(months[i])))
        graph.add(subject, EX.no2, Literal(float(no2[i])))
        graph.add(subject, EX.pm10, Literal(float(pm10[i])))
        graph.add(subject, EX.alert, Literal("alert" if alerts[i] else "ok"))
    return graph


def _select_queries() -> list[dict]:
    """The query batch timed by the ``select`` workload."""
    reading, station = Variable("r"), Variable("s")
    return [
        {"patterns": [TriplePattern(reading, RDF.type, EX.Reading),
                      TriplePattern(reading, EX.alert, Literal("alert"))]},
        {"patterns": [TriplePattern(reading, RDF.type, EX.Reading),
                      TriplePattern(reading, EX.station, station),
                      TriplePattern(station, EX.district, Variable("d"))]},
        {"patterns": [TriplePattern(reading, EX.no2, Variable("v"))],
         "order_by": "v", "descending": True, "limit": 20},
        {"patterns": [TriplePattern(reading, EX.station, station)],
         "variables": ["s"], "distinct": True},
    ]


def _city_registry(suffix: str, n_entities: int, perturb: bool) -> Graph:
    """A registry of city-like resources with fuzzy-matchable names."""
    rng = np.random.default_rng(7)
    graph = Graph(f"http://openbi.example.org/bench/{suffix}")
    for i in range(n_entities):
        name = f"{_WORDS[rng.integers(len(_WORDS))]} {_WORDS[rng.integers(len(_WORDS))]} {i:05d}"
        if perturb:
            if i % 5 == 0:
                name = name.upper()
            if i % 7 == 0:
                name = name.replace("0", "o", 1)
            if i % 11 == 0:
                name = f"ciudad {name}"
        graph.add_resource(EX[f"{suffix}/city{i}"], rdf_type=EX.City,
                           properties={EX.cityName: Literal(name)})
    return graph


def _drop_columnar(graph: Graph) -> None:
    """Forget the graph's columnar snapshot so the next run pays to build it."""
    graph.store._columnar = None


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; return its last value and the best wall time."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def _bits(value):
    """A bit-exact comparison key: floats by their IEEE-754 bytes."""
    if isinstance(value, float):
        return ("float", struct.pack("<d", value))
    return (type(value).__name__, value)


def _identical_bindings(fast: list[list[dict]], slow: list[list[dict]]) -> bool:
    """Bit-exact query-result equality: row order and binding key order included."""
    if len(fast) != len(slow):
        return False
    for result_a, result_b in zip(fast, slow):
        if len(result_a) != len(result_b):
            return False
        for binding_a, binding_b in zip(result_a, result_b):
            if list(binding_a) != list(binding_b) or binding_a != binding_b:
                return False
    return True


def _identical_links(fast, slow) -> bool:
    """Same link pairs in the same order with bit-identical scores."""
    return [(l.left, l.right, _bits(l.score)) for l in fast] == [
        (l.left, l.right, _bits(l.score)) for l in slow
    ]


def _identical_datasets(a, b) -> bool:
    """Bit-exact dataset equality: column order, ctypes, row order, float bits."""
    if a.column_names != b.column_names or a.n_rows != b.n_rows:
        return False
    for name in a.column_names:
        if a[name].ctype != b[name].ctype:
            return False
        for x, y in zip(a[name].tolist(), b[name].tolist()):
            if isinstance(x, float) and isinstance(y, float) and np.isnan(x) and np.isnan(y):
                continue
            if _bits(x) != _bits(y):
                return False
    return True


def _materialise_encoding(dataset):
    """Touch every encoded view of ``dataset`` — the profile/cube entry cost."""
    from repro.tabular.encoded import encode_dataset

    encoded = encode_dataset(dataset)
    for name in dataset.column_names:
        encoded.missing_view(name)
        if dataset[name].is_numeric():
            encoded.numeric_view(name)
        else:
            encoded.codes_view(name)
    return dataset


def _identical_encodings(a, b) -> bool:
    """Bit-exact equality of the materialised encoded views of two datasets."""
    from repro.tabular.encoded import encode_dataset

    enc_a, enc_b = encode_dataset(a), encode_dataset(b)
    for name in a.column_names:
        if a[name].is_numeric():
            va, ma = enc_a.numeric_view(name)
            vb, mb = enc_b.numeric_view(name)
            if not (np.array_equal(va, vb, equal_nan=True) and np.array_equal(ma, mb)):
                return False
        else:
            ca, la, ia = enc_a.codes_view(name)
            cb, lb, ib = enc_b.codes_view(name)
            if not (np.array_equal(ca, cb) and la == lb and ia == ib):
                return False
    return True


def _compare_paths(n_triples: int, linker_per_side: int, repeats: int = 1) -> dict:
    """Time every workload on the columnar vs reference tier and check identity."""
    results: dict[str, dict] = {}
    graph = _reading_graph(n_triples)
    queries = _select_queries()

    def run_session(force_row: bool):
        session = []
        for _ in range(SELECT_ROUNDS):
            session.append([select(graph, force_row=force_row, **query) for query in queries])
        return session[-1]

    def encoded_select():
        _drop_columnar(graph)
        return run_session(False)

    fast, fast_s = _timed(encoded_select, repeats)
    slow, slow_s = _timed(lambda: run_session(True), repeats)
    results["select"] = {
        "encoded_s": fast_s,
        "row_s": slow_s,
        "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
        "identical_to_row_path": _identical_bindings(fast, slow),
    }

    left = _city_registry("left", linker_per_side, perturb=False)
    right = _city_registry("right", linker_per_side, perturb=True)
    blocked = EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=0.9)
    pairwise = EntityLinker([LinkRule(EX.cityName, EX.cityName)], threshold=0.9)
    pairwise._force_pairwise_link = True
    fast, fast_s = _timed(lambda: blocked.link(left, EX.City, right, EX.City), repeats)
    slow, slow_s = _timed(lambda: pairwise.link(left, EX.City, right, EX.City), 1)
    results["linker"] = {
        "encoded_s": fast_s,
        "row_s": slow_s,
        "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
        "n_links": len(fast),
        "identical_to_row_path": _identical_links(fast, slow),
    }

    def encoded_tabulate():
        _drop_columnar(graph)
        return _materialise_encoding(tabulate_entities(graph, EX.Reading))

    fast, fast_s = _timed(encoded_tabulate, repeats)
    slow, slow_s = _timed(
        lambda: _materialise_encoding(tabulate_entities(graph, EX.Reading, force_row=True)), repeats
    )
    results["tabulate"] = {
        "encoded_s": fast_s,
        "row_s": slow_s,
        "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
        "identical_to_row_path": _identical_datasets(fast, slow) and _identical_encodings(fast, slow),
    }
    return results


def run_quick_case() -> dict:
    return _compare_paths(QUICK_TRIPLES, QUICK_LINKER_PER_SIDE, repeats=2)


def run_benchmark() -> dict:
    results: dict = {"sizes": {}}
    label = f"{GRAPH_TRIPLES}t/{2 * LINKER_ENTITIES_PER_SIDE}e"
    results["sizes"][label] = _compare_paths(GRAPH_TRIPLES, LINKER_ENTITIES_PER_SIDE)
    results["quick"] = {
        "n_triples": QUICK_TRIPLES,
        "linker_per_side": QUICK_LINKER_PER_SIDE,
        **run_quick_case(),
    }
    return results


def write_results(results: dict) -> Path:
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return _RESULT_PATH


def _print_results(results: dict) -> None:
    try:
        from benchmarks.conftest import print_table
    except ModuleNotFoundError:  # running as a plain script
        def print_table(title, header, rows):
            print(f"\n=== {title} ===")
            print("  ".join(header))
            for row in rows:
                print("  ".join(f"{c:.3f}" if isinstance(c, float) else str(c) for c in row))

    rows = []
    for size, entry in results["sizes"].items():
        for name, stats in entry.items():
            rows.append(
                [
                    f"{name}@{size}",
                    stats["encoded_s"],
                    stats["row_s"],
                    stats["speedup"],
                    "yes" if stats["identical_to_row_path"] else "NO",
                ]
            )
    print_table(
        "BENCH-PERF-LOD: select / linker / tabulate, columnar vs reference tier",
        ["workload", "encoded_s", "row_s", "speedup", "identical"],
        rows,
    )


def run_quick_guard(baseline_path: Path = _RESULT_PATH) -> int:
    """Rerun the quick case and compare against the recorded baseline.

    Returns a process exit code: 0 when every workload is still bit-identical
    and the guarded workloads are within ``QUICK_REGRESSION_FACTOR`` of their
    recorded speedups, 1 otherwise.
    """
    if not baseline_path.exists():
        print(f"perf guard: no baseline at {baseline_path}; run the full benchmark first")
        return 1
    baseline = json.loads(baseline_path.read_text())
    quick = baseline.get("quick", {})
    stale = (
        quick.get("n_triples") != QUICK_TRIPLES
        or quick.get("linker_per_side") != QUICK_LINKER_PER_SIDE
        or any(name not in quick for name in GUARDED_WORKLOADS)
    )
    if stale:
        print("perf guard: baseline quick case is stale; rerun the full benchmark")
        return 1
    current = run_quick_case()
    failed = False
    for name in GUARDED_WORKLOADS:
        stats = current[name]
        verdict = "ok"
        if not stats["identical_to_row_path"]:
            verdict = "DIVERGED from reference tier"
        else:
            floor = quick[name]["speedup"] / QUICK_REGRESSION_FACTOR
            if stats["speedup"] < floor:
                verdict = f"REGRESSED (floor {floor:.1f}x)"
        print(
            f"perf guard: {name}: {stats['speedup']:.1f}x "
            f"(baseline {quick[name]['speedup']:.1f}x) {verdict}"
        )
        failed = failed or verdict != "ok"
    if failed:
        print("perf guard: FAILED for the LOD columnar tier")
        return 1
    print("perf guard: LOD columnar tier within budget")
    return 0


def test_perf_lod():
    results = run_benchmark()
    path = write_results(results)
    _print_results(results)
    for size, entry in results["sizes"].items():
        for name, stats in entry.items():
            assert stats["identical_to_row_path"], (
                f"{name}@{size}: columnar result diverged from the reference tier"
            )
    size_label = f"{GRAPH_TRIPLES}t/{2 * LINKER_ENTITIES_PER_SIDE}e"
    linker = results["sizes"][size_label]["linker"]["speedup"]
    assert linker >= MIN_LINKER_SPEEDUP_AT_5K, (
        f"blocked linking at {2 * LINKER_ENTITIES_PER_SIDE} entities is {linker:.1f}x, "
        f"below the {MIN_LINKER_SPEEDUP_AT_5K}x bar"
    )
    print(f"\nresults written to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="rerun the reduced-size perf-guard case against the recorded baseline",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run_quick_guard()
    test_perf_lod()
    return 0


if __name__ == "__main__":
    sys.exit(main())
