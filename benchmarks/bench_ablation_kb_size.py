"""ABL-KB-SIZE — ablation: how many experiment records does the advisor need?

The knowledge base is subsampled at increasing sizes and the advisor's mean
achieved accuracy on unseen degraded sources is measured for each size.
Expected shape: advice quality improves (or at least does not degrade) with
more knowledge-base records and saturates well below the full campaign size.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import FAST_ALGORITHMS, print_table
from repro.core import Advisor, KnowledgeBase, apply_injections
from repro.datasets import make_classification_dataset
from repro.mining import CLASSIFIER_REGISTRY, cross_validate

FRACTIONS = (0.1, 0.3, 0.6, 1.0)
DEGRADATIONS = [{"completeness": 0.4}, {"accuracy": 0.3}, {"balance": 0.8}]


def run_ablation(knowledge_base):
    # Pre-compute the measured accuracy of every algorithm on every unseen source.
    unseen = []
    for index, injections in enumerate(DEGRADATIONS):
        base = make_classification_dataset(n_rows=130, n_numeric=4, n_categorical=2, seed=700 + index)
        dirty = apply_injections(base, injections, seed=index)
        actual = {
            name: cross_validate(CLASSIFIER_REGISTRY[name], dirty, k=3).accuracy for name in FAST_ALGORITHMS
        }
        unseen.append((dirty, actual))

    rows = []
    rng = random.Random(0)
    records = knowledge_base.records
    for fraction in FRACTIONS:
        n_records = max(len(FAST_ALGORITHMS), int(round(fraction * len(records))))
        subset = KnowledgeBase(rng.sample(records, n_records)) if n_records < len(records) else knowledge_base
        # make sure every algorithm keeps at least one record in the subset
        missing = set(FAST_ALGORITHMS) - set(subset.algorithms())
        for algorithm in missing:
            subset.add(next(r for r in records if r.algorithm == algorithm))
        advisor = Advisor(subset, k=5)
        achieved = []
        oracle = []
        for dirty, actual in unseen:
            recommendation = advisor.advise(dirty)
            achieved.append(actual[recommendation.best_algorithm])
            oracle.append(max(actual.values()))
        rows.append(
            [
                len(subset),
                sum(achieved) / len(achieved),
                sum(oracle) / len(oracle) - sum(achieved) / len(achieved),
            ]
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_kb_size(benchmark, bench_knowledge_base):
    rows = benchmark.pedantic(run_ablation, args=(bench_knowledge_base,), rounds=1, iterations=1)
    print_table(
        "ABL-KB-SIZE: advisor quality vs number of knowledge-base records",
        ["kb_records", "mean_achieved_accuracy", "mean_regret_vs_oracle"],
        rows,
    )
    # The full knowledge base should not do worse than the smallest subsample.
    assert rows[-1][1] >= rows[0][1] - 0.05
    # Regret with the full knowledge base stays small.
    assert rows[-1][2] < 0.15
    benchmark.extra_info["full_kb_regret"] = rows[-1][2]
