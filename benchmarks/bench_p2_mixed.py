"""EXP-P2-MIXED — Phase 2, mixed data quality criteria.

Pairs of criteria are injected together and compared with each criterion alone.
Expected shape: combined degradations hurt at least as much as the worse of the
two individual ones, and for some pairs (missing values + class imbalance) the
interaction is super-additive.
"""

from __future__ import annotations

import itertools

import pytest

from benchmarks.conftest import FAST_ALGORITHMS, print_table, reference_dataset
from repro.core.injection import apply_injections
from repro.mining import CLASSIFIER_REGISTRY, cross_validate

CRITERIA = ("completeness", "accuracy", "balance")
SEVERITY = 0.3


def _mean_accuracy(dataset) -> float:
    scores = [cross_validate(CLASSIFIER_REGISTRY[name], dataset, k=3).accuracy for name in FAST_ALGORITHMS]
    return sum(scores) / len(scores)


def run_experiment():
    dataset = reference_dataset(n_rows=180)
    clean = _mean_accuracy(dataset)
    single = {
        criterion: _mean_accuracy(apply_injections(dataset, {criterion: SEVERITY}, seed=1))
        for criterion in CRITERIA
    }
    rows = [["clean", "-", clean, 0.0]]
    for criterion, score in single.items():
        rows.append([criterion, "-", score, clean - score])
    pair_rows = []
    for a, b in itertools.combinations(CRITERIA, 2):
        combined = _mean_accuracy(apply_injections(dataset, {a: SEVERITY, b: SEVERITY}, seed=2))
        pair_rows.append([a, b, combined, clean - combined, min(single[a], single[b]) - combined])
        rows.append([a, b, combined, clean - combined])
    return clean, single, rows, pair_rows


@pytest.mark.benchmark(group="phase2")
def test_p2_mixed(benchmark):
    clean, single, rows, pair_rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "EXP-P2-MIXED: mean accuracy (4 classifiers) for single and mixed degradations",
        ["criterion_a", "criterion_b", "mean_accuracy", "drop_vs_clean"],
        rows,
    )
    print_table(
        "EXP-P2-MIXED: interaction effect (positive = worse than the worst single criterion)",
        ["criterion_a", "criterion_b", "mean_accuracy", "drop_vs_clean", "extra_drop_vs_worst_single"],
        pair_rows,
    )

    # Every single degradation hurts relative to clean data.
    assert all(score <= clean + 0.02 for score in single.values())
    # Every pair hurts at least roughly as much as the worse of its two parts.
    for _, _, combined, _, extra in pair_rows:
        assert extra >= -0.08
    benchmark.extra_info["max_interaction_effect"] = max(row[4] for row in pair_rows)
