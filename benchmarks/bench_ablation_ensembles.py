"""ABL-ENSEMBLE — extension: interpretable single models vs. ensembles under bad data.

The paper argues non-experts need interpretable results, which favours single
trees and rule sets; ensembles sacrifice that interpretability for robustness.
This ablation quantifies the trade-off: a single decision tree, a bagged
committee and a random-subspace forest are compared on clean data, under label
noise and under missing values.  Expected shape: the ensembles lose less
accuracy than the single tree as quality degrades, which is exactly the kind
of fact the DQ4DM knowledge base can encode for the advisor.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, reference_dataset
from repro.core.injection import apply_injections
from repro.mining import BaggingClassifier, DecisionTreeClassifier, RandomSubspaceForest, cross_validate

MODELS = {
    "single_tree": lambda: DecisionTreeClassifier(max_depth=8),
    "bagged_trees": lambda: BaggingClassifier(n_estimators=9, seed=0),
    "subspace_forest": lambda: RandomSubspaceForest(n_estimators=9, feature_fraction=0.6, seed=0),
}

SCENARIOS = {
    "clean": {},
    "label_noise_25%": {"class_noise": 0.25},
    "missing_30%": {"completeness": 0.3},
    "noise+missing": {"accuracy": 0.2, "completeness": 0.2},
}


def run_comparison():
    dataset = reference_dataset(n_rows=180)
    rows = []
    scores: dict[str, dict[str, float]] = {name: {} for name in MODELS}
    for scenario, injections in SCENARIOS.items():
        degraded = apply_injections(dataset, injections, seed=5) if injections else dataset
        for model_name, factory in MODELS.items():
            accuracy = cross_validate(factory, degraded, k=3).accuracy
            scores[model_name][scenario] = accuracy
    for model_name in MODELS:
        rows.append([model_name] + [scores[model_name][scenario] for scenario in SCENARIOS])
    return rows, scores


@pytest.mark.benchmark(group="ablation")
def test_ablation_ensembles(benchmark):
    rows, scores = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "ABL-ENSEMBLE: single tree vs ensembles under data quality problems (accuracy)",
        ["model"] + list(SCENARIOS),
        rows,
    )
    # Ensembles should not lose more accuracy than the single tree under label noise.
    tree_drop = scores["single_tree"]["clean"] - scores["single_tree"]["label_noise_25%"]
    bagged_drop = scores["bagged_trees"]["clean"] - scores["bagged_trees"]["label_noise_25%"]
    assert bagged_drop <= tree_drop + 0.05
    # And they stay competitive on clean data.
    assert scores["bagged_trees"]["clean"] >= scores["single_tree"]["clean"] - 0.05
    benchmark.extra_info["tree_drop_under_label_noise"] = tree_drop
    benchmark.extra_info["bagged_drop_under_label_noise"] = bagged_drop
