"""EXP-P1-BALANCE — Phase 1, balanced-data criterion.

The minority class is shrunk at increasing severities.  Expected shape: plain
accuracy can stay deceptively high (predicting the majority), but macro-F1 and
kappa collapse as the imbalance grows, which is exactly why the knowledge base
stores several metrics per experiment.
"""

from __future__ import annotations

import pytest

from benchmarks._sweep import sensitivity_sweep, sweep_rows
from benchmarks.conftest import FAST_ALGORITHMS, print_table, reference_dataset

SEVERITIES = (0.0, 0.5, 0.8, 0.95)


def run_sweeps():
    dataset = reference_dataset(n_rows=200)
    accuracy = sensitivity_sweep(dataset, "balance", SEVERITIES, FAST_ALGORITHMS, metric="accuracy")
    macro_f1 = sensitivity_sweep(dataset, "balance", SEVERITIES, FAST_ALGORITHMS, metric="macro_f1")
    kappa = sensitivity_sweep(dataset, "balance", SEVERITIES, FAST_ALGORITHMS, metric="kappa")
    return accuracy, macro_f1, kappa


@pytest.mark.benchmark(group="phase1")
def test_p1_balance(benchmark):
    accuracy, macro_f1, kappa = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    header = ["algorithm"] + [f"imbalance={s:.2f}" for s in SEVERITIES]
    print_table("EXP-P1-BALANCE: accuracy vs imbalance severity", header, sweep_rows(accuracy))
    print_table("EXP-P1-BALANCE: macro-F1 vs imbalance severity", header, sweep_rows(macro_f1))
    print_table("EXP-P1-BALANCE: kappa vs imbalance severity", header, sweep_rows(kappa))

    worst = max(SEVERITIES)
    for algorithm in FAST_ALGORITHMS:
        # macro-F1 and kappa degrade at least as much as raw accuracy
        accuracy_drop = accuracy[algorithm][0.0] - accuracy[algorithm][worst]
        f1_drop = macro_f1[algorithm][0.0] - macro_f1[algorithm][worst]
        kappa_drop = kappa[algorithm][0.0] - kappa[algorithm][worst]
        assert f1_drop >= accuracy_drop - 0.10
        assert kappa_drop >= accuracy_drop - 0.10
    benchmark.extra_info["mean_kappa_drop"] = sum(
        kappa[a][0.0] - kappa[a][worst] for a in FAST_ALGORITHMS
    ) / len(FAST_ALGORITHMS)
