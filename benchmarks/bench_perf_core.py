"""BENCH-PERF-CORE — encoded-matrix execution core timings.

Times the hot paths every experiment in the pipeline funnels through —
dataset encoding, k-NN / naive-Bayes 3-fold cross-validation and k-means
fitting — at n ∈ {500, 2000} rows, for both the vectorized batch path and the
retained row-at-a-time prediction loop (forced by disabling the batch hooks).
Note the row numbers are *not* pure seed timings: the row loop still benefits
from the vectorized fitting, encoded fold slicing and vectorized metrics of
the current code, so ``speedup`` isolates batch-vs-row prediction and slightly
understates the end-to-end gain over the original seed implementation (the
seed's full kNN CV at 2000 rows measured ~22.8s).  Results, including the
speedups and an equality check of the predictions, are written to
``BENCH_perf_core.json`` at the repository root so future PRs have a perf
trajectory to compare against.

Run with ``pytest benchmarks/bench_perf_core.py -s`` or directly with
``python benchmarks/bench_perf_core.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.datasets import make_classification_dataset
from repro.mining import CLASSIFIER_REGISTRY, KMeansClusterer, cross_validate
from repro.tabular.encoded import EncodedDataset

ROW_COUNTS = (500, 2000)
CV_FOLDS = 3
#: The acceptance bar: vectorized kNN cross-validation at 2000 rows must be at
#: least this many times faster than the row-at-a-time path.
MIN_KNN_SPEEDUP_AT_2000 = 5.0

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_core.json"


def _dataset(n_rows: int):
    return make_classification_dataset(n_rows=n_rows, n_numeric=4, n_categorical=2, seed=0)


def _legacy_factory(name: str):
    """A classifier factory whose instances take the row-at-a-time prediction
    loop by shadowing the batch hooks with no-ops (fitting, fold slicing and
    metrics still run on the current vectorized infrastructure)."""

    def factory():
        model = CLASSIFIER_REGISTRY[name]()
        model._predict_batch = lambda encoded: None
        model._predict_proba_batch = lambda encoded: None
        return model

    return factory


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def run_benchmark() -> dict:
    results: dict = {"cv_folds": CV_FOLDS, "sizes": {}}
    for n_rows in ROW_COUNTS:
        dataset = _dataset(n_rows)
        entry: dict = {}

        # Encoding one dataset (all feature columns, both views) from scratch.
        def encode_all():
            encoded = EncodedDataset(dataset)
            for column in dataset.feature_columns():
                encoded.numeric_view(column.name) if column.is_numeric() else encoded.codes_view(column.name)
            return encoded

        _, entry["encode_s"] = _timed(encode_all)

        for name in ("knn", "naive_bayes"):
            fast, fast_s = _timed(lambda: cross_validate(CLASSIFIER_REGISTRY[name], dataset, k=CV_FOLDS, seed=0))
            slow, slow_s = _timed(lambda: cross_validate(_legacy_factory(name), dataset, k=CV_FOLDS, seed=0))
            identical = (
                fast.accuracy == slow.accuracy
                and fast.macro_f1 == slow.macro_f1
                and fast.kappa == slow.kappa
                and fast.fold_accuracies == slow.fold_accuracies
            )
            entry[name] = {
                "batch_cv_s": fast_s,
                "row_cv_s": slow_s,
                "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
                "accuracy": fast.accuracy,
                "identical_to_row_path": identical,
            }

        _, kmeans_s = _timed(lambda: KMeansClusterer(k=4, seed=0).fit(dataset))
        entry["kmeans_fit_s"] = kmeans_s
        results["sizes"][str(n_rows)] = entry
    return results


def write_results(results: dict) -> Path:
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return _RESULT_PATH


def _print_results(results: dict) -> None:
    try:
        from benchmarks.conftest import print_table
    except ModuleNotFoundError:  # running as a plain script
        def print_table(title, header, rows):
            print(f"\n=== {title} ===")
            print("  ".join(header))
            for row in rows:
                print("  ".join(f"{c:.3f}" if isinstance(c, float) else str(c) for c in row))

    rows = []
    for n_rows, entry in results["sizes"].items():
        for algo in ("knn", "naive_bayes"):
            stats = entry[algo]
            rows.append(
                [
                    f"{algo}@{n_rows}",
                    stats["batch_cv_s"],
                    stats["row_cv_s"],
                    stats["speedup"],
                    "yes" if stats["identical_to_row_path"] else "NO",
                ]
            )
    print_table(
        "BENCH-PERF-CORE: 3-fold CV, batch vs row path",
        ["workload", "batch_s", "row_s", "speedup", "identical"],
        rows,
    )


def test_perf_core():
    results = run_benchmark()
    path = write_results(results)
    _print_results(results)
    for n_rows, entry in results["sizes"].items():
        for algo in ("knn", "naive_bayes"):
            assert entry[algo]["identical_to_row_path"], (
                f"{algo}@{n_rows}: batch CV diverged from the row-at-a-time path"
            )
    at_2000 = results["sizes"]["2000"]["knn"]["speedup"]
    assert at_2000 >= MIN_KNN_SPEEDUP_AT_2000, (
        f"kNN CV speedup at 2000 rows is {at_2000:.1f}x, below the {MIN_KNN_SPEEDUP_AT_2000}x bar"
    )
    print(f"\nresults written to {path}")


if __name__ == "__main__":
    test_perf_core()
