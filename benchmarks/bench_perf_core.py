"""BENCH-PERF-CORE — encoded-matrix execution core timings.

Times the hot paths every experiment in the pipeline funnels through —
dataset encoding and 3-fold cross-validation of every registry classifier
with a vectorized path (kNN, naive Bayes, decision tree, OneR, PRISM and the
bagged-tree ensemble) plus k-means fitting — at n ∈ {500, 2000} rows, for
both the vectorized batch path and the retained row-at-a-time reference path
(forced by disabling the batch hooks and the encoded fits).  Note the row
numbers are *not* pure seed timings: the row loops still benefit from the
encoded fold slicing and vectorized metrics of the current code, so
``speedup`` isolates batch-vs-row execution and slightly understates the
end-to-end gain over the original seed implementation (the seed's full kNN CV
at 2000 rows measured ~22.8s).  Results, including the speedups and an
equality check of the predictions, are written to ``BENCH_perf_core.json`` at
the repository root so future PRs have a perf trajectory to compare against.

The JSON also records a ``quick`` section: the same comparison at a reduced
size, used by the CI perf guard.  ``python benchmarks/bench_perf_core.py
--quick`` reruns only those cases and fails when any case's batch/row speedup
drops below half the recorded baseline (speedup ratios are used rather than
wall-clock seconds so the guard is robust to slower CI hardware) or when a
batch path stops being bit-identical to its row path.

Run the full benchmark with ``pytest benchmarks/bench_perf_core.py -s`` or
directly with ``python benchmarks/bench_perf_core.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.datasets import make_classification_dataset
from repro.mining import CLASSIFIER_REGISTRY, KMeansClusterer, cross_validate
from repro.tabular.encoded import EncodedDataset

ROW_COUNTS = (500, 2000)
CV_FOLDS = 3
#: Registry classifiers with a vectorized path, timed batch-vs-row.
CASES = ("knn", "naive_bayes", "decision_tree", "one_r", "prism", "bagged_trees")
#: The acceptance bars: vectorized cross-validation at 2000 rows must be at
#: least this many times faster than the row-at-a-time path.
MIN_KNN_SPEEDUP_AT_2000 = 5.0
MIN_TREE_SPEEDUP_AT_2000 = 5.0

#: Reduced-size rerun used by the CI perf guard (see ``--quick``).
QUICK_ROWS = 400
QUICK_CASES = ("knn", "naive_bayes", "decision_tree")
#: A quick case fails the guard when its speedup drops below
#: ``baseline_speedup / QUICK_REGRESSION_FACTOR``.
QUICK_REGRESSION_FACTOR = 2.0

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_core.json"


def _dataset(n_rows: int):
    return make_classification_dataset(n_rows=n_rows, n_numeric=4, n_categorical=2, seed=0)


def _force_row_path(model):
    """Pin one estimator instance to its row-at-a-time reference paths."""
    model._force_row_fit = True
    model._predict_batch = lambda encoded: None
    model._predict_proba_batch = lambda encoded: None
    return model


def _legacy_factory(name: str):
    """A classifier factory whose instances take the row-at-a-time fitting and
    prediction paths (fold slicing and metrics still run on the current
    vectorized infrastructure).  Ensemble members are pinned too, so the
    ensemble case measures the full committee on the row path."""

    def factory():
        model = _force_row_path(CLASSIFIER_REGISTRY[name]())
        base_factory = getattr(model, "base_factory", None)
        if base_factory is not None:
            model.base_factory = lambda: _force_row_path(base_factory())
        return model

    return factory


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; return its value and the best wall time.

    Best-of-n damps warm-up and scheduling noise, which matters for the quick
    perf guard: its pass/fail compares *speedup ratios* against the recorded
    baseline, so both sides must be measured the same low-variance way.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def _compare_paths(name: str, dataset, repeats: int = 1) -> dict:
    """Time batch vs row cross-validation of one classifier and check identity."""
    fast, fast_s = _timed(
        lambda: cross_validate(CLASSIFIER_REGISTRY[name], dataset, k=CV_FOLDS, seed=0),
        repeats,
    )
    slow, slow_s = _timed(
        lambda: cross_validate(_legacy_factory(name), dataset, k=CV_FOLDS, seed=0), repeats
    )
    identical = (
        fast.accuracy == slow.accuracy
        and fast.macro_f1 == slow.macro_f1
        and fast.kappa == slow.kappa
        and fast.fold_accuracies == slow.fold_accuracies
    )
    return {
        "batch_cv_s": fast_s,
        "row_cv_s": slow_s,
        "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
        "accuracy": fast.accuracy,
        "identical_to_row_path": identical,
    }


def run_quick_cases() -> dict:
    dataset = _dataset(QUICK_ROWS)
    return {name: _compare_paths(name, dataset, repeats=3) for name in QUICK_CASES}


def run_benchmark() -> dict:
    results: dict = {"cv_folds": CV_FOLDS, "sizes": {}}
    for n_rows in ROW_COUNTS:
        dataset = _dataset(n_rows)
        entry: dict = {}

        # Encoding one dataset (all feature columns, both views) from scratch.
        def encode_all():
            encoded = EncodedDataset(dataset)
            for column in dataset.feature_columns():
                encoded.numeric_view(column.name) if column.is_numeric() else encoded.codes_view(column.name)
            return encoded

        _, entry["encode_s"] = _timed(encode_all)

        for name in CASES:
            entry[name] = _compare_paths(name, dataset)

        _, kmeans_s = _timed(lambda: KMeansClusterer(k=4, seed=0).fit(dataset))
        entry["kmeans_fit_s"] = kmeans_s
        results["sizes"][str(n_rows)] = entry
    results["quick"] = {"n_rows": QUICK_ROWS, "cases": run_quick_cases()}
    return results


def write_results(results: dict) -> Path:
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return _RESULT_PATH


def _print_results(results: dict) -> None:
    try:
        from benchmarks.conftest import print_table
    except ModuleNotFoundError:  # running as a plain script
        def print_table(title, header, rows):
            print(f"\n=== {title} ===")
            print("  ".join(header))
            for row in rows:
                print("  ".join(f"{c:.3f}" if isinstance(c, float) else str(c) for c in row))

    rows = []
    for n_rows, entry in results["sizes"].items():
        for algo in CASES:
            stats = entry[algo]
            rows.append(
                [
                    f"{algo}@{n_rows}",
                    stats["batch_cv_s"],
                    stats["row_cv_s"],
                    stats["speedup"],
                    "yes" if stats["identical_to_row_path"] else "NO",
                ]
            )
    print_table(
        "BENCH-PERF-CORE: 3-fold CV, batch vs row path",
        ["workload", "batch_s", "row_s", "speedup", "identical"],
        rows,
    )


def run_quick_guard(baseline_path: Path = _RESULT_PATH) -> int:
    """Rerun the quick cases and compare against the recorded baseline.

    Returns a process exit code: 0 when every case is still bit-identical and
    within ``QUICK_REGRESSION_FACTOR`` of its recorded speedup, 1 otherwise.
    """
    if not baseline_path.exists():
        print(f"perf guard: no baseline at {baseline_path}; run the full benchmark first")
        return 1
    baseline = json.loads(baseline_path.read_text())
    quick = baseline.get("quick", {})
    recorded = quick.get("cases")
    if not recorded or any(name not in recorded for name in QUICK_CASES):
        print("perf guard: baseline is missing quick cases; rerun the full benchmark")
        return 1
    if quick.get("n_rows") != QUICK_ROWS:
        print(
            f"perf guard: baseline quick size {quick.get('n_rows')} != {QUICK_ROWS}; "
            "rerun the full benchmark"
        )
        return 1
    current = run_quick_cases()
    failures = []
    for name in QUICK_CASES:
        stats = current[name]
        floor = recorded[name]["speedup"] / QUICK_REGRESSION_FACTOR
        verdict = "ok"
        if not stats["identical_to_row_path"]:
            verdict = "DIVERGED from row path"
        elif stats["speedup"] < floor:
            verdict = f"REGRESSED (floor {floor:.1f}x)"
        print(
            f"perf guard: {name}@{QUICK_ROWS}: {stats['speedup']:.1f}x "
            f"(baseline {recorded[name]['speedup']:.1f}x) {verdict}"
        )
        if verdict != "ok":
            failures.append(name)
    if failures:
        print(f"perf guard: FAILED for {', '.join(failures)}")
        return 1
    print("perf guard: all cases within budget")
    return 0


def test_perf_core():
    results = run_benchmark()
    path = write_results(results)
    _print_results(results)
    for n_rows, entry in results["sizes"].items():
        for algo in CASES:
            assert entry[algo]["identical_to_row_path"], (
                f"{algo}@{n_rows}: batch CV diverged from the row-at-a-time path"
            )
    knn_at_2000 = results["sizes"]["2000"]["knn"]["speedup"]
    assert knn_at_2000 >= MIN_KNN_SPEEDUP_AT_2000, (
        f"kNN CV speedup at 2000 rows is {knn_at_2000:.1f}x, below the {MIN_KNN_SPEEDUP_AT_2000}x bar"
    )
    tree_at_2000 = results["sizes"]["2000"]["decision_tree"]["speedup"]
    assert tree_at_2000 >= MIN_TREE_SPEEDUP_AT_2000, (
        f"tree CV speedup at 2000 rows is {tree_at_2000:.1f}x, below the {MIN_TREE_SPEEDUP_AT_2000}x bar"
    )
    print(f"\nresults written to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="rerun the reduced-size perf-guard cases against the recorded baseline",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run_quick_guard()
    test_perf_core()
    return 0


if __name__ == "__main__":
    sys.exit(main())
