"""EXP-P1-MISSING — Phase 1, completeness criterion.

Missing values are injected at increasing rates and every classifier is
cross-validated on each variant.  Expected shape: accuracy decreases with the
missing rate for every algorithm; naive Bayes (which simply skips missing
attributes) degrades less than k-NN (whose HEOM distance saturates) and less
than the rule inducers.
"""

from __future__ import annotations

import pytest

from benchmarks._sweep import degradation, most_robust, sensitivity_sweep, sweep_rows
from benchmarks.conftest import BENCH_ALGORITHMS, print_table, reference_dataset

SEVERITIES = (0.0, 0.1, 0.2, 0.4)


def run_sweep():
    return sensitivity_sweep(reference_dataset(), "completeness", SEVERITIES, BENCH_ALGORITHMS)


@pytest.mark.benchmark(group="phase1")
def test_p1_completeness(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "EXP-P1-MISSING: accuracy vs missing-value rate",
        ["algorithm"] + [f"missing={s:.0%}" for s in SEVERITIES],
        sweep_rows(results),
    )
    benchmark.extra_info["most_robust"] = most_robust(results)

    for algorithm in BENCH_ALGORITHMS:
        clean = results[algorithm][0.0]
        worst = results[algorithm][max(SEVERITIES)]
        assert clean >= worst - 0.05, f"{algorithm} should not improve under heavy missingness"
    # naive Bayes (which skips missing attributes) is expected to remain among
    # the strongest algorithms at the heaviest missing-value rate.
    worst_severity = max(SEVERITIES)
    ranked_at_worst = sorted(BENCH_ALGORITHMS, key=lambda name: -results[name][worst_severity])
    assert "naive_bayes" in ranked_at_worst[:3]
    benchmark.extra_info["mean_degradation"] = sum(
        degradation(results, name) for name in BENCH_ALGORITHMS
    ) / len(BENCH_ALGORITHMS)
