"""BENCH-PERF-STORE — memory-mapped store open vs cold in-memory encode.

The persistence tier (:mod:`repro.store`) promises two things: opening a
saved store file costs O(metadata) instead of O(cells) — the encoded views
come back as zero-copy memory maps with every instance cache pre-seeded —
and everything computed on those views is **bit-identical** to a cold
in-memory encode of the same dataset or graph.  This benchmark measures
both promises:

* *dataset startup* — cold path (encode every numeric/code/missing/
  normalised view from the raw cells) vs ``repro.store.open_dataset`` plus
  touching the same views, at ≥1M cells; the speedup is the headline
  number and the full run asserts it stays ≥ ``MIN_DATASET_SPEEDUP``;
* *graph startup* — cold path (intern the columnar snapshot and build all
  three index orderings and block tables) vs ``repro.store.open_graph``;
* *hot-path parity* — quality profile, cube roll-up and vectorized LOD
  select run on the opened payloads and must match the cold results
  bit-for-bit (the encoded views themselves are compared as raw bytes).

Results are written to ``BENCH_perf_store.json`` at the repository root.
The JSON also records a ``quick`` section at a reduced size, used by the CI
perf guard: ``python benchmarks/bench_perf_store.py --quick`` reruns it and
fails when any opened view or hot-path result diverges from the cold
encode, or when an open-vs-encode speedup drops below half its recorded
baseline (ratios, not wall-clock, so slower CI runners don't false-alarm).

Run the full benchmark with ``pytest benchmarks/bench_perf_store.py -s``
or directly with ``python benchmarks/bench_perf_store.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bi import Cube, Dimension, Measure
from repro.datasets import make_classification_dataset
from repro.lod.publish import publish_dataset
from repro.lod.query import TriplePattern, Variable, select
from repro.lod.vocabulary import RDF
from repro.quality import measure_quality
from repro.store import open_dataset, open_graph, save_dataset, save_graph
from repro.tabular.dataset import ColumnType
from repro.tabular.encoded import encode_dataset

#: Full-size dataset case: 150k rows x 8 columns = 1.2M cells (the ISSUE
#: acceptance floor is 1M).
DATASET_ROWS = 150_000
DATASET_NUMERIC = 5
DATASET_CATEGORICAL = 3
#: Full-size graph case: published entities, ~9 triples per row.
GRAPH_ROWS = 4_000
#: The acceptance bar: memmap open must beat the cold encode by at least
#: this factor at the full dataset size.
MIN_DATASET_SPEEDUP = 20.0

#: Reduced-size rerun used by the CI perf guard (see ``--quick``).
QUICK_DATASET_ROWS = 20_000
QUICK_GRAPH_ROWS = 600
#: The quick case fails the guard when a speedup drops below
#: ``baseline_speedup / QUICK_REGRESSION_FACTOR``.
QUICK_REGRESSION_FACTOR = 2.0

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_store.json"


def _make_dataset(n_rows: int):
    """A mixed-type synthetic dataset of ``n_rows`` rows."""
    return make_classification_dataset(
        n_rows=n_rows,
        n_numeric=DATASET_NUMERIC,
        n_categorical=DATASET_CATEGORICAL,
        seed=0,
    )


def _make_graph(n_rows: int):
    """A published LOD graph describing ``n_rows`` entities."""
    dataset = make_classification_dataset(
        n_rows=n_rows, n_numeric=2, n_categorical=2, seed=0
    )
    return publish_dataset(dataset)


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; return its last value and the best wall time."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def _touch_dataset_views(dataset) -> None:
    """Materialise every encoded view (the startup work being measured).

    This is the work the cold path pays per process and the store open
    skips: float parses, first-seen code assignment, normalisation.
    """
    encoded = encode_dataset(dataset)
    for column in dataset.columns:
        name = column.name
        encoded.numeric_view(name)
        if column.ctype != ColumnType.NUMERIC:
            encoded.codes_view(name)
            encoded.normalised_levels(name)


def _cold_touch_dataset_views(dataset) -> None:
    """Drop the instance cache and re-encode everything from the raw cells."""
    if hasattr(dataset, "_encoded_cache"):
        delattr(dataset, "_encoded_cache")
    _touch_dataset_views(dataset)


def _dataset_view_bytes(dataset) -> dict[str, bytes]:
    """The encoded views as raw bytes — the bit-identicality witness."""
    encoded = encode_dataset(dataset)
    views: dict[str, bytes] = {}
    for column in dataset.columns:
        name = column.name
        values, missing = encoded.numeric_view(name)
        views[f"{name}.num"] = values.tobytes()
        views[f"{name}.nmk"] = missing.tobytes()
        if column.ctype != ColumnType.NUMERIC:
            codes, vocabulary, _ = encoded.codes_view(name)
            views[f"{name}.cod"] = codes.tobytes()
            views[f"{name}.lev"] = "\x00".join(str(v) for v in vocabulary).encode()
            views[f"{name}.nrm"] = "\x00".join(encoded.normalised_levels(name)).encode()
    return views


def _touch_graph_orders(graph) -> None:
    """Materialise the columnar snapshot's orders and block tables."""
    columnar = graph.store.columnar()
    for index in ("spo", "pos", "osp"):
        columnar.order(index)
        columnar._block_table(index)


def _cold_touch_graph_orders(graph) -> None:
    """Drop the columnar snapshot and re-intern + re-sort from the store."""
    graph.store._columnar = None
    _touch_graph_orders(graph)


def _graph_order_bytes(graph) -> dict[str, bytes]:
    """The columnar orders and block tables as raw comparable bytes."""
    columnar = graph.store.columnar()
    views: dict[str, bytes] = {}
    for index in ("spo", "pos", "osp"):
        for label, array in zip("spo", columnar.order(index)):
            views[f"{index}.{label}"] = np.asarray(array).tobytes()
        keys, starts, ends = columnar._block_table(index)
        views[f"{index}.blocks"] = b"".join(
            np.asarray(a).tobytes() for a in (keys, starts, ends)
        )
    return views


def _select_signature(graph) -> bytes:
    """A byte signature of a vectorized rdf:type select over ``graph``."""
    bindings = select(
        graph, [TriplePattern(Variable("s"), RDF.type, Variable("t"))]
    )
    return "\x00".join(
        f"{row['s']}|{row['t']}" for row in bindings
    ).encode()


def _profile_signature(dataset) -> str:
    """The quality profile as canonical JSON (the hot-path parity witness)."""
    return json.dumps(measure_quality(dataset).to_json_dict(), sort_keys=True)


def _cube_rollup(dataset):
    """A single-dimension cube roll-up on the first categorical column."""
    categorical = next(
        c.name for c in dataset.columns if c.ctype != ColumnType.NUMERIC
    )
    numeric = next(c.name for c in dataset.columns if c.ctype == ColumnType.NUMERIC)
    cube = Cube(
        dataset,
        dimensions=[Dimension(categorical, (categorical,))],
        measures=[
            Measure("mean_value", numeric, "mean"),
            Measure("rows", numeric, "count"),
        ],
    )
    return cube.rollup(categorical)


def _dataset_case(n_rows: int, workdir: Path, repeats: int) -> dict:
    """Cold encode vs store open on one dataset size, with parity checks."""
    dataset = _make_dataset(n_rows)
    path = workdir / f"dataset_{n_rows}.rps"
    save_dataset(dataset, path)

    _, cold_s = _timed(lambda: _cold_touch_dataset_views(dataset), repeats)
    opened_holder: list = []

    def _open_and_touch():
        opened = open_dataset(path)
        opened_holder.append(opened)
        _touch_dataset_views(opened)

    _, open_s = _timed(_open_and_touch, repeats)
    opened = opened_holder[-1]

    views_identical = _dataset_view_bytes(dataset) == _dataset_view_bytes(opened)
    profile_identical = _profile_signature(dataset) == _profile_signature(opened)
    cube_identical = _cube_rollup(dataset) == _cube_rollup(opened)
    return {
        "n_rows": n_rows,
        "n_cells": n_rows * (DATASET_NUMERIC + DATASET_CATEGORICAL),
        "cold_encode_s": cold_s,
        "store_open_s": open_s,
        "speedup": cold_s / open_s if open_s > 0 else float("inf"),
        "views_identical": views_identical,
        "profile_identical": profile_identical,
        "cube_identical": cube_identical,
    }


def _graph_case(n_rows: int, workdir: Path, repeats: int) -> dict:
    """Cold columnar build vs store open on one graph size, with parity."""
    graph = _make_graph(n_rows)
    path = workdir / f"graph_{n_rows}.rps"
    save_graph(graph, path)

    _, cold_s = _timed(lambda: _cold_touch_graph_orders(graph), repeats)
    opened_holder: list = []

    def _open_and_touch():
        opened = open_graph(path)
        opened_holder.append(opened)
        _touch_graph_orders(opened)

    _, open_s = _timed(_open_and_touch, repeats)
    opened = opened_holder[-1]

    orders_identical = _graph_order_bytes(graph) == _graph_order_bytes(opened)
    select_identical = _select_signature(graph) == _select_signature(opened)
    return {
        "n_rows": n_rows,
        "n_triples": len(graph),
        "cold_columnar_s": cold_s,
        "store_open_s": open_s,
        "speedup": cold_s / open_s if open_s > 0 else float("inf"),
        "orders_identical": orders_identical,
        "select_identical": select_identical,
    }


_PARITY_FLAGS = (
    "views_identical",
    "profile_identical",
    "cube_identical",
    "orders_identical",
    "select_identical",
)


def _parity_ok(case: dict) -> bool:
    """Whether every parity flag present in ``case`` is true."""
    return all(case[flag] for flag in _PARITY_FLAGS if flag in case)


def run_quick_case() -> dict:
    """The reduced-size case the CI perf guard reruns."""
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        workdir = Path(tmp)
        return {
            "dataset": _dataset_case(QUICK_DATASET_ROWS, workdir, repeats=3),
            "graph": _graph_case(QUICK_GRAPH_ROWS, workdir, repeats=3),
        }


def run_benchmark() -> dict:
    """Full benchmark: startup speedups + parity at full and quick sizes."""
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        workdir = Path(tmp)
        results: dict = {
            "sizes": {
                f"rows={DATASET_ROWS}": {
                    "dataset": _dataset_case(DATASET_ROWS, workdir, repeats=2),
                    "graph": _graph_case(GRAPH_ROWS, workdir, repeats=2),
                }
            }
        }
    results["quick"] = {
        "dataset_rows": QUICK_DATASET_ROWS,
        "graph_rows": QUICK_GRAPH_ROWS,
        **run_quick_case(),
    }
    return results


def write_results(results: dict) -> Path:
    """Write the benchmark JSON next to the other ``BENCH_*.json`` baselines."""
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return _RESULT_PATH


def _print_results(results: dict) -> None:
    """Render the benchmark as the shared fixed-width table."""
    try:
        from benchmarks.conftest import print_table
    except ModuleNotFoundError:  # running as a plain script

        def print_table(title, header, rows):
            print(f"\n=== {title} ===")
            print("  ".join(header))
            for row in rows:
                print("  ".join(f"{c:.3f}" if isinstance(c, float) else str(c) for c in row))

    rows = []
    for label, entry in results["sizes"].items():
        ds = entry["dataset"]
        rows.append(
            [
                f"dataset open ({ds['n_cells']} cells)",
                ds["cold_encode_s"],
                ds["store_open_s"],
                ds["speedup"],
                "yes" if _parity_ok(ds) else "NO",
            ]
        )
        gr = entry["graph"]
        rows.append(
            [
                f"graph open ({gr['n_triples']} triples)",
                gr["cold_columnar_s"],
                gr["store_open_s"],
                gr["speedup"],
                "yes" if _parity_ok(gr) else "NO",
            ]
        )
    print_table(
        "BENCH-PERF-STORE: memmap open vs cold encode",
        ["workload", "cold_s", "open_s", "speedup", "identical"],
        rows,
    )


def run_quick_guard(baseline_path: Path = _RESULT_PATH) -> int:
    """Rerun the quick case and compare against the recorded baseline.

    Returns a process exit code: 0 when every opened view and hot-path
    result is still bit-identical to the cold encode and both open-vs-encode
    speedups stay above half their recorded baselines; 1 otherwise.
    """
    if not baseline_path.exists():
        print(f"perf guard: no baseline at {baseline_path}; run the full benchmark first")
        return 1
    baseline = json.loads(baseline_path.read_text())
    quick = baseline.get("quick", {})
    if "dataset" not in quick or "graph" not in quick:
        print("perf guard: baseline is missing the quick case; rerun the full benchmark")
        return 1
    if (
        quick.get("dataset_rows") != QUICK_DATASET_ROWS
        or quick.get("graph_rows") != QUICK_GRAPH_ROWS
    ):
        print(
            f"perf guard: baseline quick sizes {quick.get('dataset_rows')}/"
            f"{quick.get('graph_rows')} != {QUICK_DATASET_ROWS}/{QUICK_GRAPH_ROWS}; "
            "rerun the full benchmark"
        )
        return 1
    try:
        current = run_quick_case()
    except Exception as exc:  # noqa: BLE001 - the guard reports, CI fails
        print(f"perf guard: save -> open -> touch round trip raised: {exc!r}")
        return 1

    failures = []
    for kind in ("dataset", "graph"):
        now, base = current[kind], quick[kind]
        if not _parity_ok(now):
            broken = [f for f in _PARITY_FLAGS if f in now and not now[f]]
            failures.append(f"{kind} store open DIVERGED from the cold encode: {broken}")
            continue
        floor = base["speedup"] / QUICK_REGRESSION_FACTOR
        if now["speedup"] < floor:
            failures.append(
                f"{kind} open speedup {now['speedup']:.1f}x fell below floor {floor:.1f}x "
                f"(baseline {base['speedup']:.1f}x)"
            )
        else:
            print(
                f"perf guard: {kind} open speedup {now['speedup']:.1f}x "
                f"(baseline {base['speedup']:.1f}x, floor {floor:.1f}x) ok"
            )
    if failures:
        for failure in failures:
            print(f"perf guard: {failure}")
        print("perf guard: FAILED for store")
        return 1
    print("perf guard: store tier within budget")
    return 0


def test_perf_store():
    """Full benchmark as a pytest: asserts parity and the 20x startup bar."""
    results = run_benchmark()
    path = write_results(results)
    _print_results(results)
    for label, entry in results["sizes"].items():
        for kind in ("dataset", "graph"):
            assert _parity_ok(entry[kind]), (
                f"{kind} store open ({label}) diverged from the cold encode: {entry[kind]}"
            )
        assert entry["dataset"]["speedup"] >= MIN_DATASET_SPEEDUP, (
            f"dataset open speedup ({label}) is {entry['dataset']['speedup']:.1f}x, "
            f"below the {MIN_DATASET_SPEEDUP}x bar"
        )
        assert entry["graph"]["speedup"] > 1.0, entry["graph"]
    assert _parity_ok(results["quick"]["dataset"])
    assert _parity_ok(results["quick"]["graph"])
    print(f"\nresults written to {path}")


def main(argv: list[str] | None = None) -> int:
    """Entry point: full benchmark by default, ``--quick`` for the CI guard."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="rerun the reduced-size perf-guard case against the recorded baseline",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run_quick_guard()
    test_perf_store()
    return 0


if __name__ == "__main__":
    sys.exit(main())
