"""Shared Phase-1 sweep machinery used by the per-criterion benchmarks.

A sweep takes one injector (one data quality criterion), degrades the clean
reference sample at increasing severities and cross-validates every candidate
algorithm on each degraded variant — exactly the "simple" experiments of the
paper's §3.1 whose aggregated rows populate the DQ4DM knowledge base.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.injection import apply_injections
from repro.mining import CLASSIFIER_REGISTRY
from repro.mining.validation import cross_validate
from repro.tabular.dataset import Dataset


def sensitivity_sweep(
    dataset: Dataset,
    injector_name: str,
    severities: Sequence[float],
    algorithms: Sequence[str],
    metric: str = "accuracy",
    cv_folds: int = 3,
    seed: int = 0,
) -> dict[str, dict[float, float]]:
    """Return ``algorithm → {severity → metric}`` for one injected criterion."""
    results: dict[str, dict[float, float]] = {name: {} for name in algorithms}
    for step, severity in enumerate(severities):
        degraded = (
            dataset
            if severity == 0.0
            else apply_injections(dataset, {injector_name: severity}, seed=seed + step)
        )
        for name in algorithms:
            evaluation = cross_validate(CLASSIFIER_REGISTRY[name], degraded, k=cv_folds, seed=seed)
            results[name][severity] = getattr(evaluation, metric)
    return results


def sweep_rows(results: dict[str, dict[float, float]]) -> list[list]:
    """Flatten sweep results into printable table rows (algorithm, then one column per severity)."""
    severities = sorted(next(iter(results.values())))
    rows = []
    for algorithm in sorted(results):
        rows.append([algorithm] + [results[algorithm][severity] for severity in severities])
    return rows


def degradation(results: dict[str, dict[float, float]], algorithm: str) -> float:
    """Clean-minus-worst score for one algorithm (how much the problem hurts it)."""
    by_severity = results[algorithm]
    clean = by_severity[min(by_severity)]
    worst = min(by_severity.values())
    return clean - worst


def most_robust(results: dict[str, dict[float, float]]) -> str:
    """The algorithm with the smallest degradation across the sweep."""
    return min(sorted(results), key=lambda name: degradation(results, name))
