"""Benchmark harness: one module per paper figure / experiment table (see DESIGN.md)."""
