"""FIG1 — the KDD process of Figure 1, end to end.

Data sources (CSV + LOD) → integration into a repository → attribute/algorithm
selection (quality measurement + feature ranking) → data mining → evaluation of
the resulting patterns.  The benchmark reports the artefact sizes and the
accuracy reached at the end of the pipeline.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.datasets import air_quality, civic_lod_graph, service_requests
from repro.datasets.civic import CIVIC
from repro.lod.tabulate import tabulate_entities
from repro.mining import CLASSIFIER_REGISTRY, information_gain_ranking, train_test_split
from repro.quality import measure_quality
from repro.tabular import read_csv_text, write_csv_text
from repro.tabular.transforms import join


def run_kdd_pipeline() -> dict[str, float]:
    # Phase (i): data integration — one CSV source, one LOD source, joined on district.
    csv_source = read_csv_text(write_csv_text(service_requests(n_rows=150, seed=5, dirty=True)))
    csv_source = csv_source.set_target("resolved_late").set_role("request_id", "identifier")
    lod_graph = civic_lod_graph(air_quality(n_rows=150, seed=1), entity_class="AirQualityReading")
    lod_table = tabulate_entities(lod_graph, CIVIC.AirQualityReading)

    district_pollution = lod_table.select_columns(["district", "no2", "pm10"])
    from repro.tabular.transforms import group_by

    pollution_by_district = group_by(
        district_pollution, ["district"], {"mean_no2": ("no2", "mean"), "mean_pm10": ("pm10", "mean")}
    )
    integrated = join(csv_source, pollution_by_district, on="district", how="left")
    integrated = integrated.set_target("resolved_late").set_role("request_id", "identifier")

    # Phase (ii): selection — quality profile + attribute ranking guide the choice.
    profile = measure_quality(integrated)
    ranking = information_gain_ranking(integrated)

    # Phase (ii): mining with the default tree.
    train, test = train_test_split(integrated, seed=0)
    model = CLASSIFIER_REGISTRY["decision_tree"]().fit(train)

    # Phase (iii): evaluation of the resulting patterns.
    accuracy = model.score(test)
    rules = model.extract_rules()
    return {
        "triples_in_lod_source": float(len(lod_graph)),
        "integrated_rows": float(integrated.n_rows),
        "integrated_columns": float(integrated.n_columns),
        "overall_quality": profile.overall(),
        "top_attribute_gain": ranking[0][1],
        "holdout_accuracy": accuracy,
        "n_extracted_rules": float(len(rules)),
    }


@pytest.mark.benchmark(group="fig1")
def test_fig1_kdd_pipeline(benchmark):
    result = benchmark.pedantic(run_kdd_pipeline, rounds=1, iterations=1)
    print_table(
        "FIG1: KDD process — sources to knowledge",
        ["stage metric", "value"],
        [[key, value] for key, value in result.items()],
    )
    benchmark.extra_info.update(result)
    assert result["holdout_accuracy"] > 0.5
    assert result["n_extracted_rules"] >= 1
