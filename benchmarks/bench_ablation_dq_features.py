"""ABL-DQ-FEATURES — ablation: which measured criteria drive good advice?

The advisor's profile distance is restricted by dropping one quality criterion
at a time.  Expected shape: dropping criteria that the experiments actually
varied (completeness, accuracy, balance) costs more advice quality than
dropping criteria that stayed nearly constant (outliers), confirming that the
knowledge base's value comes from the criteria it measured systematically.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FAST_ALGORITHMS, print_table
from repro.core import Advisor, apply_injections
from repro.datasets import make_classification_dataset
from repro.mining import CLASSIFIER_REGISTRY, cross_validate

DEGRADATIONS = [{"completeness": 0.45}, {"accuracy": 0.35}, {"balance": 0.85}, {"completeness": 0.3, "accuracy": 0.2}]


def run_ablation(knowledge_base):
    criteria = knowledge_base.criteria()
    unseen = []
    for index, injections in enumerate(DEGRADATIONS):
        base = make_classification_dataset(n_rows=130, n_numeric=4, n_categorical=2, seed=800 + index)
        dirty = apply_injections(base, injections, seed=index)
        actual = {
            name: cross_validate(CLASSIFIER_REGISTRY[name], dirty, k=3).accuracy for name in FAST_ALGORITHMS
        }
        unseen.append((dirty, actual))

    def mean_achieved(advisor: Advisor) -> float:
        achieved = []
        for dirty, actual in unseen:
            recommendation = advisor.advise(dirty)
            achieved.append(actual[recommendation.best_algorithm])
        return sum(achieved) / len(achieved)

    rows = [["(all criteria)", mean_achieved(Advisor(knowledge_base, k=5, criteria=criteria))]]
    for dropped in criteria:
        remaining = [c for c in criteria if c != dropped]
        rows.append([f"without {dropped}", mean_achieved(Advisor(knowledge_base, k=5, criteria=remaining))])
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_dq_features(benchmark, bench_knowledge_base):
    rows = benchmark.pedantic(run_ablation, args=(bench_knowledge_base,), rounds=1, iterations=1)
    print_table(
        "ABL-DQ-FEATURES: advisor quality when one measured criterion is ignored",
        ["criterion set", "mean_achieved_accuracy"],
        rows,
    )
    full = rows[0][1]
    worst_drop = max(full - value for _, value in rows[1:])
    benchmark.extra_info["worst_drop_when_removing_one_criterion"] = worst_drop
    # Advice never becomes dramatically better by ignoring a criterion.
    assert all(value <= full + 0.05 for _, value in rows[1:])
