"""BENCH-PERF-BI — encoded-core OLAP/BI aggregation timings.

Times the BI front end's hot aggregations over a municipal-budget-style fact
table at 100k rows, for both execution paths: the vectorized encoded-core
path (group keys from the cached int64 code arrays, measures reduced over
sorted-scan segments of the float views) and the retained row-at-a-time
reference (forced via the cube's ``_force_row_olap`` escape hatch /
``group_by(..., force_row=True)``).  Three workloads are timed:

``rollup``
    ``Cube.rollup`` to the district level (three measures).
``pivot``
    ``Cube.pivot`` of one measure over district × year.
``kpi``
    :func:`repro.bi.kpi.evaluate_kpis_by_level` — a per-district scoreboard
    of two KPIs.

Encoded timings include encoding the dataset from scratch (the instance
cache is dropped before every run), so the speedup is what a cold dashboard
render actually sees.  Results — speedups plus a bit-identity check of the
aggregated datasets (values, row order and key order) — are written to
``BENCH_perf_bi.json`` at the repository root.

The JSON also records a ``quick`` section at a reduced size, used by the CI
perf guard: ``python benchmarks/bench_perf_bi.py --quick`` reruns it and
fails when the roll-up or KPI speedup drops below half the recorded baseline
(ratios, not wall-clock, so slower CI runners don't false-alarm) or when any
encoded result stops being bit-identical to the row path.

Run the full benchmark with ``pytest benchmarks/bench_perf_bi.py -s`` or
directly with ``python benchmarks/bench_perf_bi.py``.
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import time
from pathlib import Path

import numpy as np

from repro.bi import Cube, Dimension, KPI, Measure, evaluate_kpis_by_level
from repro.tabular.dataset import ColumnType, Dataset
from repro.tabular.encoded import _CACHE_ATTR

FACT_ROWS = 100_000
#: The acceptance bar: the encoded roll-up at 100k rows must be at least this
#: many times faster than the row-at-a-time path.
MIN_SPEEDUP_AT_100K = 5.0

#: Reduced-size rerun used by the CI perf guard (see ``--quick``).
QUICK_ROWS = 5_000
#: A quick workload fails the guard when its speedup drops below
#: ``baseline_speedup / QUICK_REGRESSION_FACTOR``.
QUICK_REGRESSION_FACTOR = 2.0
#: The workloads the guard checks (pivot is recorded but not guarded: its
#: cross-tabulation tail is shared by both paths, diluting the ratio).
GUARDED_WORKLOADS = ("rollup", "kpi")

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_bi.json"

_DISTRICTS = [f"district_{i:02d}" for i in range(20)]
_CATEGORIES = ["transport", "health", "education", "culture", "housing", "parks", "safety", "it"]


def _dataset(n_rows: int) -> Dataset:
    """A budget-style fact table with ~5% missing cells in a key and a measure."""
    rng = np.random.default_rng(0)
    district = [
        None if gap else _DISTRICTS[i]
        for gap, i in zip(rng.random(n_rows) < 0.05, rng.integers(len(_DISTRICTS), size=n_rows))
    ]
    category = [_CATEGORIES[i] for i in rng.integers(len(_CATEGORIES), size=n_rows)]
    year = (2019.0 + rng.integers(5, size=n_rows)).astype(float)
    amount = np.round(rng.uniform(1_000, 500_000, size=n_rows), 2)
    amount[rng.random(n_rows) < 0.05] = np.nan
    rate = np.round(rng.uniform(0.0, 1.2, size=n_rows), 4)
    return Dataset.from_dict(
        {
            "district": district,
            "category": category,
            "year": year.tolist(),
            "amount": amount.tolist(),
            "rate": rate.tolist(),
        },
        name="budget_facts",
        ctypes={
            "district": ColumnType.CATEGORICAL,
            "category": ColumnType.CATEGORICAL,
            "year": ColumnType.NUMERIC,
            "amount": ColumnType.NUMERIC,
            "rate": ColumnType.NUMERIC,
        },
    )


def _cube(dataset: Dataset, force_row: bool = False) -> Cube:
    cube = Cube(
        dataset,
        dimensions=[
            Dimension("district", ("district",)),
            Dimension("category", ("category",)),
            Dimension("year", ("year",)),
        ],
        measures=[
            Measure("total", "amount", "sum"),
            Measure("mean_rate", "rate", "mean"),
            Measure("n", "amount", "count"),
        ],
    )
    cube._force_row_olap = force_row
    return cube


_KPIS = [
    KPI("avg_rate", "rate", target=0.6),
    KPI("avg_amount", "amount", target=300_000.0, higher_is_better=False, tolerance=0.2),
]

#: workload name → callable(cube) -> Dataset.
_WORKLOADS = {
    "rollup": lambda cube: cube.rollup("district"),
    "pivot": lambda cube: cube.pivot("district", "year"),
    "kpi": lambda cube: evaluate_kpis_by_level(_KPIS, cube, "district"),
}


def _drop_encoding(dataset: Dataset) -> None:
    """Forget the dataset's cached encoding so the next run pays for it."""
    if hasattr(dataset, _CACHE_ATTR):
        delattr(dataset, _CACHE_ATTR)


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; return its last value and the best wall time."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def _bits(value):
    """A bit-exact comparison key: floats by their IEEE-754 bytes."""
    if isinstance(value, float):
        return ("float", struct.pack("<d", value))
    return (type(value).__name__, value)


def _identical(a: Dataset, b: Dataset) -> bool:
    """Bit-exact dataset equality: column order, ctypes, row order, float bits."""
    if a.column_names != b.column_names or a.n_rows != b.n_rows:
        return False
    for name in a.column_names:
        if a[name].ctype != b[name].ctype:
            return False
        if any(_bits(x) != _bits(y) for x, y in zip(a[name].tolist(), b[name].tolist())):
            return False
    return True


def _compare_paths(dataset: Dataset, repeats: int = 1) -> dict:
    """Time every workload on the encoded vs row path and check identity."""
    results: dict[str, dict] = {}
    for name, workload in _WORKLOADS.items():
        def encoded_run():
            _drop_encoding(dataset)
            return workload(_cube(dataset))

        fast, fast_s = _timed(encoded_run, repeats)
        slow, slow_s = _timed(lambda: workload(_cube(dataset, force_row=True)), repeats)
        results[name] = {
            "encoded_s": fast_s,
            "row_s": slow_s,
            "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
            "identical_to_row_path": _identical(fast, slow),
        }
    return results


def run_quick_case() -> dict:
    return _compare_paths(_dataset(QUICK_ROWS), repeats=3)


def run_benchmark() -> dict:
    results: dict = {"sizes": {}}
    results["sizes"][str(FACT_ROWS)] = _compare_paths(_dataset(FACT_ROWS))
    results["quick"] = {"n_rows": QUICK_ROWS, **run_quick_case()}
    return results


def write_results(results: dict) -> Path:
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return _RESULT_PATH


def _print_results(results: dict) -> None:
    try:
        from benchmarks.conftest import print_table
    except ModuleNotFoundError:  # running as a plain script
        def print_table(title, header, rows):
            print(f"\n=== {title} ===")
            print("  ".join(header))
            for row in rows:
                print("  ".join(f"{c:.3f}" if isinstance(c, float) else str(c) for c in row))

    rows = []
    for n_rows, entry in results["sizes"].items():
        for name, stats in entry.items():
            rows.append(
                [
                    f"{name}@{n_rows}",
                    stats["encoded_s"],
                    stats["row_s"],
                    stats["speedup"],
                    "yes" if stats["identical_to_row_path"] else "NO",
                ]
            )
    print_table(
        "BENCH-PERF-BI: OLAP/KPI aggregation, encoded vs row path",
        ["workload", "encoded_s", "row_s", "speedup", "identical"],
        rows,
    )


def run_quick_guard(baseline_path: Path = _RESULT_PATH) -> int:
    """Rerun the quick case and compare against the recorded baseline.

    Returns a process exit code: 0 when every workload is still bit-identical
    and the guarded workloads are within ``QUICK_REGRESSION_FACTOR`` of their
    recorded speedups, 1 otherwise.
    """
    if not baseline_path.exists():
        print(f"perf guard: no baseline at {baseline_path}; run the full benchmark first")
        return 1
    baseline = json.loads(baseline_path.read_text())
    quick = baseline.get("quick", {})
    if quick.get("n_rows") != QUICK_ROWS or any(name not in quick for name in _WORKLOADS):
        print("perf guard: baseline quick case is stale; rerun the full benchmark")
        return 1
    current = run_quick_case()
    failed = False
    for name in _WORKLOADS:
        stats = current[name]
        verdict = "ok"
        if not stats["identical_to_row_path"]:
            verdict = "DIVERGED from row path"
        elif name in GUARDED_WORKLOADS:
            floor = quick[name]["speedup"] / QUICK_REGRESSION_FACTOR
            if stats["speedup"] < floor:
                verdict = f"REGRESSED (floor {floor:.1f}x)"
        print(
            f"perf guard: {name}@{QUICK_ROWS}: {stats['speedup']:.1f}x "
            f"(baseline {quick[name]['speedup']:.1f}x) {verdict}"
        )
        failed = failed or verdict != "ok"
    if failed:
        print("perf guard: FAILED for the BI aggregation layer")
        return 1
    print("perf guard: BI aggregations within budget")
    return 0


def test_perf_bi():
    results = run_benchmark()
    path = write_results(results)
    _print_results(results)
    for n_rows, entry in results["sizes"].items():
        for name, stats in entry.items():
            assert stats["identical_to_row_path"], (
                f"{name}@{n_rows}: encoded result diverged from the row-at-a-time path"
            )
    rollup = results["sizes"][str(FACT_ROWS)]["rollup"]["speedup"]
    assert rollup >= MIN_SPEEDUP_AT_100K, (
        f"cube roll-up speedup at {FACT_ROWS} rows is {rollup:.1f}x, "
        f"below the {MIN_SPEEDUP_AT_100K}x bar"
    )
    print(f"\nresults written to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="rerun the reduced-size perf-guard case against the recorded baseline",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run_quick_guard()
    test_perf_bi()
    return 0


if __name__ == "__main__":
    sys.exit(main())
