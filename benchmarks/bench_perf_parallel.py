"""BENCH-PERF-PARALLEL — worker-pool scaling over shared encoded views.

The parallel tier (:mod:`repro.parallel`) promises two things: every
``n_jobs`` call site stays **bit-identical** to its sequential run at any
worker count — float summation order included, because both tiers run the
same per-unit function and merge in unit order — and independent units
(CV folds, ensemble member fits, quality criteria, linker blocks) scale
with the worker count on multi-core machines.  This benchmark measures
both promises:

* *scaling curves* — each workload runs at ``n_jobs`` 1, 2 and 4 and the
  wall-clock speedup over the sequential tier is recorded per worker
  count, together with ``n_cores`` of the machine that produced the
  baseline (a speedup above 1 is physically impossible on one core; the
  curves are honest, not aspirational);
* *parity* — every parallel result is compared against the sequential
  result bit-for-bit (floats by their IEEE-754 bytes) and the run fails
  on the first divergence.

Results are written to ``BENCH_perf_parallel.json`` at the repository
root.  The JSON also records a ``quick`` section at reduced sizes, used
by the CI perf guard: ``python benchmarks/bench_perf_parallel.py
--quick`` reruns it and fails when any parallel result diverges from the
sequential tier, or — only when both the recording machine and the CI
runner have enough cores for a speedup to be physically meaningful — when
a workload's 4-worker speedup drops below half its recorded baseline.

Run the full benchmark with ``pytest benchmarks/bench_perf_parallel.py -s``
or directly with ``python benchmarks/bench_perf_parallel.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import struct
import sys
import time
from pathlib import Path

from repro.datasets import make_classification_dataset, service_requests
from repro.lod.graph import Graph
from repro.lod.linker import EntityLinker, LinkRule
from repro.lod.terms import IRI, Literal
from repro.lod.vocabulary import RDF
from repro.mining.ensemble import BaggingClassifier
from repro.mining.tree import DecisionTreeClassifier
from repro.mining.validation import cross_validate
from repro.quality import measure_quality
from repro.tabular.transforms import group_by

#: Worker counts measured for every workload (1 is the sequential tier).
N_JOBS_CURVE = (1, 2, 4)

#: Full-size workloads.
CV_ROWS, CV_FOLDS = 2_400, 8
ENSEMBLE_ROWS, ENSEMBLE_MEMBERS = 2_400, 16
QUALITY_ROWS = 12_000
LINKER_ENTITIES = 90
GROUP_BY_ROWS = 60_000

#: Reduced-size rerun used by the CI perf guard (see ``--quick``).
QUICK_CV_ROWS, QUICK_CV_FOLDS = 600, 4
QUICK_ENSEMBLE_ROWS, QUICK_ENSEMBLE_MEMBERS = 600, 8
QUICK_QUALITY_ROWS = 3_000
QUICK_LINKER_ENTITIES = 40
QUICK_GROUP_BY_ROWS = 15_000

#: The quick case fails the guard when a 4-worker speedup drops below
#: ``baseline_speedup / QUICK_REGRESSION_FACTOR`` — enforced only when the
#: baseline itself cleared ``MIN_ENFORCEABLE_SPEEDUP`` (i.e. was recorded
#: on a machine with real parallelism) and the CI runner has ≥2 cores.
QUICK_REGRESSION_FACTOR = 2.0
MIN_ENFORCEABLE_SPEEDUP = 1.2

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_parallel.json"


def _bits(value: float) -> str:
    """The IEEE-754 bytes of a float, hex-encoded (NaN-safe bit comparison)."""
    return struct.pack("<d", float(value)).hex()


def _timed(fn):
    """Run ``fn`` once; return ``(value, wall_seconds)``."""
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _linker_graphs(n_entities: int) -> tuple[Graph, Graph, IRI, IRI]:
    """Two graphs of ``n_entities`` noisily-matching named entities each."""
    entity = IRI("http://bench.example.org/Entity")
    name = IRI("http://bench.example.org/name")
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
    left, right = Graph("bench-left"), Graph("bench-right")
    for i in range(n_entities):
        title = f"{words[i % len(words)]} {words[(i * 3 + 1) % len(words)]} {i // len(words)}"
        subject = IRI(f"http://bench.example.org/l{i}")
        left.add(subject, RDF.type, entity)
        left.add(subject, name, Literal(title))
        subject = IRI(f"http://bench.example.org/r{i}")
        right.add(subject, RDF.type, entity)
        # Perturb half the right-hand titles so matching is non-trivial.
        right.add(subject, name, Literal(title.upper() if i % 2 else title + "x"))
    return left, right, entity, name


# ---------------------------------------------------------------------------
# Workloads: each returns (signature, runner) where runner(n_jobs) -> signature
# ---------------------------------------------------------------------------


def _cv_case(n_rows: int, k: int):
    """Cross-validation folds over a shared encoded dataset."""
    dataset = make_classification_dataset(n_rows=n_rows, n_numeric=4, n_categorical=2, seed=0)

    def run(n_jobs: int) -> str:
        result = cross_validate(DecisionTreeClassifier, dataset, k=k, n_jobs=n_jobs)
        return json.dumps(
            {
                "accuracy": _bits(result.accuracy),
                "macro_f1": _bits(result.macro_f1),
                "kappa": _bits(result.kappa),
                "folds": [_bits(a) for a in result.fold_accuracies],
            }
        )

    return f"{k}-fold CV, {n_rows} rows", run


def _ensemble_case(n_rows: int, n_members: int):
    """Independent ensemble member fits from pre-drawn sampling plans."""
    dataset = make_classification_dataset(n_rows=n_rows, n_numeric=4, n_categorical=2, seed=1)

    def run(n_jobs: int) -> str:
        model = BaggingClassifier(
            n_estimators=n_members, feature_fraction=0.7, seed=0, n_jobs=n_jobs
        )
        model.fit(dataset)
        return json.dumps(
            {
                "predictions": model.predict(dataset),
                "features": model.estimator_features_,
            }
        )

    return f"bagging fit, {n_members} members, {n_rows} rows", run


def _quality_case(n_rows: int):
    """The default quality criteria over one shared encoding."""
    dataset = service_requests(n_rows=n_rows, dirty=True)

    def run(n_jobs: int) -> str:
        profile = measure_quality(dataset, n_jobs=n_jobs)
        return json.dumps({name: _bits(score) for name, score in profile.as_dict().items()})

    return f"quality profile, {n_rows} rows", run


def _linker_case(n_entities: int):
    """Blocked entity linking, one candidate block per left subject."""
    left, right, entity, name = _linker_graphs(n_entities)
    rules = [LinkRule(name, name)]

    def run(n_jobs: int) -> str:
        links = EntityLinker(rules, threshold=0.75, n_jobs=n_jobs).link(left, entity, right, entity)
        return json.dumps([[str(l.left), str(l.right), _bits(l.score)] for l in links])

    return f"blocked linking, {n_entities}x{n_entities} entities", run


def _group_by_case(n_rows: int):
    """Per-group segment reductions over the encoded group-by path."""
    dataset = service_requests(n_rows=n_rows, dirty=True)
    aggregations = {
        "total_days": ("resolution_days", "sum"),
        "spread": ("resolution_days", "std"),
        "middle": ("resolution_days", "median"),
        "n": ("resolution_days", "count"),
    }

    def run(n_jobs: int) -> str:
        grouped = group_by(dataset, ["district", "topic"], aggregations, n_jobs=n_jobs)
        return json.dumps(
            [
                {k: _bits(v) if isinstance(v, float) else v for k, v in row.items()}
                for row in grouped.iter_rows()
            ]
        )

    return f"group_by reduction, {n_rows} rows", run


def _measure_case(workload: str, run) -> dict:
    """One workload's scaling curve with bit-exact parity at every point."""
    sequential_signature, sequential_s = _timed(lambda: run(1))
    times = {"1": sequential_s}
    speedups = {}
    parity = True
    for n_jobs in N_JOBS_CURVE[1:]:
        signature, elapsed = _timed(lambda: run(n_jobs))
        parity = parity and (signature == sequential_signature)
        times[str(n_jobs)] = elapsed
        speedups[str(n_jobs)] = sequential_s / elapsed if elapsed > 0 else float("inf")
    return {
        "workload": workload,
        "seconds": times,
        "speedup": speedups,
        "parity": parity,
    }


def _case_set(sizes: dict) -> dict:
    """Measure every call-site workload at the given sizes."""
    return {
        "cv_folds": _measure_case(*_cv_case(sizes["cv_rows"], sizes["cv_folds"])),
        "ensemble_fit": _measure_case(
            *_ensemble_case(sizes["ensemble_rows"], sizes["ensemble_members"])
        ),
        "quality_profile": _measure_case(*_quality_case(sizes["quality_rows"])),
        "linker_blocks": _measure_case(*_linker_case(sizes["linker_entities"])),
        "group_by": _measure_case(*_group_by_case(sizes["group_by_rows"])),
    }


FULL_SIZES = {
    "cv_rows": CV_ROWS,
    "cv_folds": CV_FOLDS,
    "ensemble_rows": ENSEMBLE_ROWS,
    "ensemble_members": ENSEMBLE_MEMBERS,
    "quality_rows": QUALITY_ROWS,
    "linker_entities": LINKER_ENTITIES,
    "group_by_rows": GROUP_BY_ROWS,
}

QUICK_SIZES = {
    "cv_rows": QUICK_CV_ROWS,
    "cv_folds": QUICK_CV_FOLDS,
    "ensemble_rows": QUICK_ENSEMBLE_ROWS,
    "ensemble_members": QUICK_ENSEMBLE_MEMBERS,
    "quality_rows": QUICK_QUALITY_ROWS,
    "linker_entities": QUICK_LINKER_ENTITIES,
    "group_by_rows": QUICK_GROUP_BY_ROWS,
}


def run_benchmark() -> dict:
    """Full benchmark: scaling curves + parity at full and quick sizes."""
    return {
        "n_cores": os.cpu_count(),
        "n_jobs_curve": list(N_JOBS_CURVE),
        "cases": _case_set(FULL_SIZES),
        "quick": {"sizes": QUICK_SIZES, "cases": _case_set(QUICK_SIZES)},
    }


def write_results(results: dict) -> Path:
    """Write the benchmark JSON next to the other ``BENCH_*.json`` baselines."""
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return _RESULT_PATH


def _print_results(results: dict) -> None:
    """Render the benchmark as the shared fixed-width table."""
    try:
        from benchmarks.conftest import print_table
    except ModuleNotFoundError:  # running as a plain script

        def print_table(title, header, rows):
            print(f"\n=== {title} ===")
            print("  ".join(header))
            for row in rows:
                print("  ".join(f"{c:.3f}" if isinstance(c, float) else str(c) for c in row))

    rows = []
    for case in results["cases"].values():
        rows.append(
            [
                case["workload"],
                case["seconds"]["1"],
                case["speedup"].get("2", float("nan")),
                case["speedup"].get("4", float("nan")),
                "yes" if case["parity"] else "NO",
            ]
        )
    print_table(
        f"BENCH-PERF-PARALLEL: scaling over shared views ({results['n_cores']} cores)",
        ["workload", "seq_s", "x2", "x4", "identical"],
        rows,
    )


def run_quick_guard(baseline_path: Path = _RESULT_PATH) -> int:
    """Rerun the quick case and compare against the recorded baseline.

    Returns a process exit code: 0 when every parallel result is still
    bit-identical to the sequential tier and (where physically meaningful,
    see the module docstring) the 4-worker speedups stay above half their
    recorded baselines; 1 otherwise.
    """
    if not baseline_path.exists():
        print(f"perf guard: no baseline at {baseline_path}; run the full benchmark first")
        return 1
    baseline = json.loads(baseline_path.read_text())
    quick = baseline.get("quick", {})
    if quick.get("sizes") != QUICK_SIZES:
        print("perf guard: baseline quick sizes are stale; rerun the full benchmark")
        return 1
    try:
        current = _case_set(QUICK_SIZES)
    except Exception as exc:  # noqa: BLE001 - the guard reports, CI fails
        print(f"perf guard: parallel dispatch raised: {exc!r}")
        return 1

    cores = os.cpu_count() or 1
    failures = []
    for key, now in current.items():
        base = quick["cases"].get(key)
        if base is None:
            print(f"perf guard: baseline is missing case {key!r}; rerun the full benchmark")
            return 1
        if not now["parity"]:
            failures.append(f"{key} parallel run DIVERGED from the sequential tier")
            continue
        base_speedup = base["speedup"].get("4", 0.0)
        if base_speedup < MIN_ENFORCEABLE_SPEEDUP or cores < 2:
            print(
                f"perf guard: {key} parity ok; speedup not enforced "
                f"(baseline {base_speedup:.2f}x on {baseline.get('n_cores')} core(s), "
                f"runner has {cores})"
            )
            continue
        floor = base_speedup / QUICK_REGRESSION_FACTOR
        now_speedup = now["speedup"].get("4", 0.0)
        if now_speedup < floor:
            failures.append(
                f"{key} 4-worker speedup {now_speedup:.2f}x fell below floor {floor:.2f}x "
                f"(baseline {base_speedup:.2f}x)"
            )
        else:
            print(
                f"perf guard: {key} 4-worker speedup {now_speedup:.2f}x "
                f"(baseline {base_speedup:.2f}x, floor {floor:.2f}x) ok"
            )
    if failures:
        for failure in failures:
            print(f"perf guard: {failure}")
        print("perf guard: FAILED for parallel")
        return 1
    print("perf guard: parallel tier within budget")
    return 0


def test_perf_parallel():
    """Full benchmark as a pytest: asserts parity at every curve point."""
    results = run_benchmark()
    path = write_results(results)
    _print_results(results)
    for key, case in results["cases"].items():
        assert case["parity"], f"{key} parallel run diverged from the sequential tier"
        assert results["quick"]["cases"][key]["parity"], f"{key} quick case diverged"
    print(f"\nresults written to {path}")


def main(argv: list[str] | None = None) -> int:
    """Entry point: full benchmark by default, ``--quick`` for the CI guard."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="rerun the reduced-size perf-guard case against the recorded baseline",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run_quick_guard()
    test_perf_parallel()
    return 0


if __name__ == "__main__":
    sys.exit(main())
