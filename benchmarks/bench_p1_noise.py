"""EXP-P1-NOISE — Phase 1, accuracy/noise criterion (attribute noise and class noise).

Expected shape: every classifier loses accuracy as noise grows; class (label)
noise hurts more than attribute noise at the same rate, and the decision tree
is hit hard by label noise while naive Bayes degrades more gracefully.
"""

from __future__ import annotations

import pytest

from benchmarks._sweep import sensitivity_sweep, sweep_rows
from benchmarks.conftest import FAST_ALGORITHMS, print_table, reference_dataset

SEVERITIES = (0.0, 0.1, 0.2, 0.3)


def run_sweeps():
    dataset = reference_dataset()
    attribute = sensitivity_sweep(dataset, "accuracy", SEVERITIES, FAST_ALGORITHMS)
    label = sensitivity_sweep(dataset, "class_noise", SEVERITIES, FAST_ALGORITHMS)
    return attribute, label


@pytest.mark.benchmark(group="phase1")
def test_p1_noise(benchmark):
    attribute, label = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    print_table(
        "EXP-P1-NOISE (attribute noise): accuracy vs noise rate",
        ["algorithm"] + [f"noise={s:.0%}" for s in SEVERITIES],
        sweep_rows(attribute),
    )
    print_table(
        "EXP-P1-NOISE (class/label noise): accuracy vs noise rate",
        ["algorithm"] + [f"noise={s:.0%}" for s in SEVERITIES],
        sweep_rows(label),
    )

    worst_severity = max(SEVERITIES)
    for algorithm in FAST_ALGORITHMS:
        assert attribute[algorithm][worst_severity] <= attribute[algorithm][0.0] + 0.03
        assert label[algorithm][worst_severity] <= label[algorithm][0.0] + 0.03
    # label noise is at least as damaging as attribute noise on average
    mean_attribute_drop = sum(attribute[a][0.0] - attribute[a][worst_severity] for a in FAST_ALGORITHMS)
    mean_label_drop = sum(label[a][0.0] - label[a][worst_severity] for a in FAST_ALGORITHMS)
    benchmark.extra_info["mean_attribute_drop"] = mean_attribute_drop / len(FAST_ALGORITHMS)
    benchmark.extra_info["mean_label_drop"] = mean_label_drop / len(FAST_ALGORITHMS)
    assert mean_label_drop >= mean_attribute_drop - 0.05
