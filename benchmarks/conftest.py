"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper (a figure's pipeline or
one of the §3.1 experiment tables) and prints the resulting rows/series, so
running ``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation.
"""

from __future__ import annotations

import pytest

from repro.core import ExperimentPlan, ExperimentRunner, UserProfile
from repro.datasets import make_classification_dataset, municipal_budget

#: Algorithms compared across all experiment benchmarks.
BENCH_ALGORITHMS = ("decision_tree", "naive_bayes", "knn", "logistic_regression", "one_r", "prism")

#: Smaller subset used where the full set would make the benchmark too slow.
FAST_ALGORITHMS = ("decision_tree", "naive_bayes", "knn", "one_r")


def reference_dataset(n_rows: int = 150, seed: int = 0):
    """The clean reference sample every Phase-1/Phase-2 experiment starts from."""
    return make_classification_dataset(n_rows=n_rows, n_numeric=4, n_categorical=2, seed=seed)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print an aligned results table (the rows the paper's tables would hold)."""
    rendered = [[f"{cell:.3f}" if isinstance(cell, float) else str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    print("  ".join("-" * widths[i] for i in range(len(header))))
    for cells in rendered:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)))


@pytest.fixture(scope="session")
def bench_knowledge_base():
    """A knowledge base shared by the Figure-2 / advisor / ablation benchmarks."""
    runner = ExperimentRunner(
        profile=UserProfile(name="bench", algorithms=FAST_ALGORITHMS, cv_folds=3),
        plan=ExperimentPlan(
            criteria=("completeness", "accuracy", "balance", "correlation", "dimensionality"),
            simple_severities=(0.0, 0.2, 0.4),
            mixed_severity=0.25,
        ),
    )
    datasets = [reference_dataset(seed=0), municipal_budget(n_rows=150, seed=1)]
    return runner.run(datasets)
