"""BENCH-PERF-SERVE — hot-cache vs cold vs direct-library query throughput.

The serving tier (:mod:`repro.serve`) promises that putting a long-lived
HTTP server in front of the library costs you nothing in correctness and
buys you a fingerprint-keyed result cache: a **hot** response (cache hit)
replays the exact bytes of the first computation, so repeated dashboard
queries skip the compute entirely.  This benchmark measures three rates
for each workload, in queries/second over a live ``ThreadingHTTPServer``:

* *direct* — the in-process library call (``evaluate`` + canonical
  serialization), no HTTP: the ceiling;
* *cold* — every request a fresh cache key (a nonce parameter), so each
  one computes: direct cost + HTTP/dispatch overhead;
* *hot* — the same request repeated, served from the LRU cache: HTTP
  overhead only.

Every benchmarked response is parity-flagged: the HTTP body (hot and
cold) must be bit-identical to the direct library call on the same
snapshot.  The headline acceptance bar is that the hot-cache rate beats
the cold rate by ≥ ``MIN_HOT_SPEEDUP`` on the profile workload.

Results are written to ``BENCH_perf_serve.json`` at the repository root.
The JSON also records a ``quick`` section at a reduced size, used by the
CI perf guard: ``python benchmarks/bench_perf_serve.py --quick`` reruns
it and fails when any response diverges from the direct call or a
hot-vs-cold speedup drops below half its recorded baseline (ratios, not
wall-clock, so slower CI runners don't false-alarm).

Run the full benchmark with ``pytest benchmarks/bench_perf_serve.py -s``
or directly with ``python benchmarks/bench_perf_serve.py``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.datasets import make_classification_dataset
from repro.lod.publish import publish_dataset
from repro.serve import create_server, encode_response, evaluate
from repro.store import open_dataset, open_graph, save_dataset, save_graph

RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

#: Full-size case: the dataset the server holds while being hammered.
DATASET_ROWS = 8_000
GRAPH_ROWS = 800
#: The acceptance bar: hot-cache q/s must beat cold q/s by at least this
#: factor on the profile workload (the compute-heavy headline).
MIN_HOT_SPEEDUP = 5.0
#: Requests per measured rate at full size.
N_COLD_REQUESTS = 8
N_HOT_REQUESTS = 60

#: Reduced-size rerun used by the CI perf guard (see ``--quick``).
QUICK_DATASET_ROWS = 2_000
QUICK_GRAPH_ROWS = 300
QUICK_COLD_REQUESTS = 5
QUICK_HOT_REQUESTS = 30
#: The quick case fails the guard when a hot-vs-cold speedup drops below
#: ``baseline_speedup / QUICK_REGRESSION_FACTOR``.
QUICK_REGRESSION_FACTOR = 2.0

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_serve.json"

#: The benchmarked workloads: (key, endpoint, params, snapshot kind).
_WORKLOADS = [
    ("profile", "/profile", {}, "dataset"),
    (
        "cube_aggregate",
        "/cube/aggregate",
        {
            "dimensions": ["cat_0"],
            "measures": [{"column": "num_0", "aggregation": "mean"},
                         {"column": "num_1", "aggregation": "sum"}],
            "levels": ["cat_0"],
        },
        "dataset",
    ),
    (
        "lod_select",
        "/lod/select",
        {"patterns": [["?s", RDF_TYPE, "?t"]], "order_by": "s"},
        "graph",
    ),
]


def _make_dataset(n_rows: int):
    """A mixed-type synthetic dataset of ``n_rows`` rows."""
    return make_classification_dataset(n_rows=n_rows, n_numeric=4, n_categorical=3, seed=0)


def _make_graph(n_rows: int):
    """A published LOD graph describing ``n_rows`` entities."""
    return publish_dataset(
        make_classification_dataset(n_rows=n_rows, n_numeric=2, n_categorical=2, seed=0)
    )


class _Client:
    """A keep-alive HTTP client so per-request TCP setup doesn't drown the rates."""

    def __init__(self, host: str, port: int) -> None:
        self.connection = http.client.HTTPConnection(host, port, timeout=60)

    def post(self, path: str, params: dict) -> tuple[int, bytes]:
        """One POST round trip; returns ``(status, body)``."""
        self.connection.request(
            "POST", path, body=json.dumps(params), headers={"Content-Type": "application/json"}
        )
        response = self.connection.getresponse()
        return response.status, response.read()

    def close(self) -> None:
        """Drop the persistent connection."""
        self.connection.close()


def _rate(fn, n: int) -> float:
    """Run ``fn`` ``n`` times and return the rate in calls/second."""
    start = time.perf_counter()
    for _ in range(n):
        fn()
    elapsed = time.perf_counter() - start
    return n / elapsed if elapsed > 0 else float("inf")


def _workload_case(client: _Client, payload, endpoint: str, params: dict,
                   n_cold: int, n_hot: int) -> dict:
    """Measure direct / cold / hot rates for one endpoint, with parity flags.

    ``payload`` is an independently opened dataset/graph over the same
    store file the server serves — the direct-library baseline.
    """
    direct_body = encode_response(evaluate(endpoint, payload, params))
    direct_qps = _rate(lambda: encode_response(evaluate(endpoint, payload, params)), n_cold)

    # Cold: a fresh nonce per request defeats the cache key, so every
    # request computes (endpoints ignore unknown parameters).
    nonce = iter(range(10_000_000))

    def cold_request():
        status, body = client.post(endpoint, {**params, "nonce": next(nonce)})
        assert status == 200
        return body

    cold_bodies = {cold_request() for _ in range(2)}
    cold_qps = _rate(cold_request, n_cold)

    # Hot: the identical request replays cached bytes (first one warms).
    status, hot_body = client.post(endpoint, params)
    assert status == 200

    def hot_request():
        return client.post(endpoint, params)[1]

    hot_qps = _rate(hot_request, n_hot)
    parity = hot_body == direct_body and cold_bodies == {direct_body}
    return {
        "endpoint": endpoint,
        "direct_qps": direct_qps,
        "cold_qps": cold_qps,
        "hot_qps": hot_qps,
        "hot_vs_cold": hot_qps / cold_qps if cold_qps > 0 else float("inf"),
        "hot_vs_direct": hot_qps / direct_qps if direct_qps > 0 else float("inf"),
        "parity_identical": parity,
    }


def _run_cases(dataset_rows: int, graph_rows: int, n_cold: int, n_hot: int) -> dict:
    """Save, serve and hammer every workload at one size."""
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        workdir = Path(tmp)
        dataset_path = save_dataset(_make_dataset(dataset_rows), workdir / "bench.rps")
        graph_path = save_graph(_make_graph(graph_rows), workdir / "bench_graph.rps")
        server = create_server(stores=[dataset_path], graphs=[graph_path])
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        payloads = {
            "dataset": open_dataset(dataset_path),
            "graph": open_graph(graph_path),
        }
        host, port = server.server_address[:2]
        client = _Client(host, port)
        try:
            results = {}
            for key, endpoint, params, kind in _WORKLOADS:
                case = _workload_case(client, payloads[kind], endpoint, params, n_cold, n_hot)
                case["n_rows" if kind == "dataset" else "n_entities"] = (
                    dataset_rows if kind == "dataset" else graph_rows
                )
                results[key] = case
            return results
        finally:
            client.close()
            for payload in payloads.values():
                payload.close()
            server.shutdown()
            thread.join(timeout=10)
            server.close()


def run_quick_case() -> dict:
    """The reduced-size case the CI perf guard reruns."""
    return _run_cases(
        QUICK_DATASET_ROWS, QUICK_GRAPH_ROWS, QUICK_COLD_REQUESTS, QUICK_HOT_REQUESTS
    )


def run_benchmark() -> dict:
    """Full benchmark: all three rates per workload at full and quick sizes."""
    results: dict = {
        "sizes": {
            f"rows={DATASET_ROWS}": _run_cases(
                DATASET_ROWS, GRAPH_ROWS, N_COLD_REQUESTS, N_HOT_REQUESTS
            )
        },
        "quick": {
            "dataset_rows": QUICK_DATASET_ROWS,
            "graph_rows": QUICK_GRAPH_ROWS,
            **run_quick_case(),
        },
    }
    return results


def write_results(results: dict) -> Path:
    """Write the benchmark JSON next to the other ``BENCH_*.json`` baselines."""
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return _RESULT_PATH


def _print_results(results: dict) -> None:
    """Render the benchmark as the shared fixed-width table."""
    try:
        from benchmarks.conftest import print_table
    except ModuleNotFoundError:  # running as a plain script

        def print_table(title, header, rows):
            print(f"\n=== {title} ===")
            print("  ".join(header))
            for row in rows:
                print("  ".join(f"{c:.3f}" if isinstance(c, float) else str(c) for c in row))

    rows = []
    for label, cases in results["sizes"].items():
        for key, case in cases.items():
            rows.append(
                [
                    f"{key} ({label})",
                    case["direct_qps"],
                    case["cold_qps"],
                    case["hot_qps"],
                    case["hot_vs_cold"],
                    "yes" if case["parity_identical"] else "NO",
                ]
            )
    print_table(
        "BENCH-PERF-SERVE: hot-cache vs cold vs direct q/s",
        ["workload", "direct_qps", "cold_qps", "hot_qps", "hot/cold", "identical"],
        rows,
    )


def run_quick_guard(baseline_path: Path = _RESULT_PATH) -> int:
    """Rerun the quick case and compare against the recorded baseline.

    Returns a process exit code: 0 when every benchmarked response is
    still bit-identical to the direct library call and each workload's
    hot-vs-cold speedup stays above half its recorded baseline; 1
    otherwise.
    """
    if not baseline_path.exists():
        print(f"perf guard: no baseline at {baseline_path}; run the full benchmark first")
        return 1
    baseline = json.loads(baseline_path.read_text())
    quick = baseline.get("quick", {})
    if any(key not in quick for key, *_ in _WORKLOADS):
        print("perf guard: baseline is missing quick workloads; rerun the full benchmark")
        return 1
    if (
        quick.get("dataset_rows") != QUICK_DATASET_ROWS
        or quick.get("graph_rows") != QUICK_GRAPH_ROWS
    ):
        print(
            f"perf guard: baseline quick sizes {quick.get('dataset_rows')}/"
            f"{quick.get('graph_rows')} != {QUICK_DATASET_ROWS}/{QUICK_GRAPH_ROWS}; "
            "rerun the full benchmark"
        )
        return 1
    try:
        current = run_quick_case()
    except Exception as exc:  # noqa: BLE001 - the guard reports, CI fails
        print(f"perf guard: save -> serve -> query round trip raised: {exc!r}")
        return 1

    failures = []
    for key, *_ in _WORKLOADS:
        now, base = current[key], quick[key]
        if not now["parity_identical"]:
            failures.append(f"{key} response DIVERGED from the direct library call")
            continue
        floor = base["hot_vs_cold"] / QUICK_REGRESSION_FACTOR
        if now["hot_vs_cold"] < floor:
            failures.append(
                f"{key} hot-vs-cold speedup {now['hot_vs_cold']:.1f}x fell below floor "
                f"{floor:.1f}x (baseline {base['hot_vs_cold']:.1f}x)"
            )
        else:
            print(
                f"perf guard: {key} hot-vs-cold {now['hot_vs_cold']:.1f}x "
                f"(baseline {base['hot_vs_cold']:.1f}x, floor {floor:.1f}x) ok"
            )
    if failures:
        for failure in failures:
            print(f"perf guard: {failure}")
        print("perf guard: FAILED for serve")
        return 1
    print("perf guard: serve tier within budget")
    return 0


def test_perf_serve():
    """Full benchmark as a pytest: asserts parity and the 5x hot-cache bar."""
    results = run_benchmark()
    path = write_results(results)
    _print_results(results)
    for label, cases in results["sizes"].items():
        for key, case in cases.items():
            assert case["parity_identical"], (
                f"{key} ({label}) response diverged from the direct library call: {case}"
            )
            assert case["hot_vs_cold"] > 1.0, case
        assert cases["profile"]["hot_vs_cold"] >= MIN_HOT_SPEEDUP, (
            f"profile hot-cache speedup ({label}) is "
            f"{cases['profile']['hot_vs_cold']:.1f}x, below the {MIN_HOT_SPEEDUP}x bar"
        )
    for key, *_ in _WORKLOADS:
        assert results["quick"][key]["parity_identical"]
    print(f"\nresults written to {path}")


def main(argv: list[str] | None = None) -> int:
    """Entry point: full benchmark by default, ``--quick`` for the CI guard."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="rerun the reduced-size perf-guard case against the recorded baseline",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run_quick_guard()
    test_perf_serve()
    return 0


if __name__ == "__main__":
    sys.exit(main())
