"""FIG2 — the full framework of Figure 2.

Stage 1 (experiments → DQ4DM knowledge base) is provided by the shared
``bench_knowledge_base`` fixture; this benchmark measures Stage 2: profiling
unseen degraded sources, asking the advisor for "the best option", and
comparing the advice against the naive strategies a non-expert would use.
Expected shape: the advisor's regret against the oracle is small and its mean
achieved accuracy beats random choice and is at least as good as always using
the algorithm that was best on clean data.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FAST_ALGORITHMS, print_table
from repro.core import Advisor, apply_injections
from repro.core.advisor import fixed_best_on_clean_baseline, random_choice_baseline
from repro.core.rules import derive_guidance_rules
from repro.datasets import make_classification_dataset
from repro.mining import CLASSIFIER_REGISTRY, cross_validate

UNSEEN_DEGRADATIONS = [
    {"completeness": 0.4},
    {"accuracy": 0.3},
    {"balance": 0.8},
    {"dimensionality": 0.8},
    {"completeness": 0.3, "accuracy": 0.2},
    {"completeness": 0.2, "balance": 0.6},
]


def run_stage2(knowledge_base):
    advisor = Advisor(knowledge_base, k=7)
    fixed_choice = fixed_best_on_clean_baseline(knowledge_base)
    rows = []
    totals = {"advisor": 0.0, "fixed": 0.0, "random": 0.0, "oracle": 0.0}
    for index, injections in enumerate(UNSEEN_DEGRADATIONS):
        unseen = make_classification_dataset(n_rows=140, n_numeric=4, n_categorical=2, seed=500 + index)
        dirty = apply_injections(unseen, injections, seed=index)
        recommendation = advisor.advise(dirty)
        actual = {
            name: cross_validate(CLASSIFIER_REGISTRY[name], dirty, k=3).accuracy for name in FAST_ALGORITHMS
        }
        random_choice = random_choice_baseline(FAST_ALGORITHMS, seed=index)
        oracle = max(actual.values())
        rows.append(
            [
                "+".join(injections),
                recommendation.best_algorithm,
                actual[recommendation.best_algorithm],
                actual[fixed_choice],
                actual[random_choice],
                oracle,
            ]
        )
        totals["advisor"] += actual[recommendation.best_algorithm]
        totals["fixed"] += actual[fixed_choice]
        totals["random"] += actual[random_choice]
        totals["oracle"] += oracle
    n = len(UNSEEN_DEGRADATIONS)
    means = {key: value / n for key, value in totals.items()}
    rules = derive_guidance_rules(knowledge_base)
    return rows, means, rules


@pytest.mark.benchmark(group="fig2")
def test_fig2_framework(benchmark, bench_knowledge_base):
    rows, means, rules = benchmark.pedantic(run_stage2, args=(bench_knowledge_base,), rounds=1, iterations=1)
    print_table(
        "FIG2: advisor vs baselines on unseen degraded sources (accuracy achieved by the chosen algorithm)",
        ["degradation", "advised_algorithm", "advisor", "fixed_best_on_clean", "random", "oracle"],
        rows,
    )
    print_table(
        "FIG2: mean achieved accuracy per strategy",
        ["strategy", "mean_accuracy"],
        [[key, value] for key, value in means.items()],
    )
    print(f"\nguidance rules derived from the knowledge base: {len(rules)}")
    for rule in rules[:5]:
        print(f"  * {rule.as_text()}")

    benchmark.extra_info.update({f"mean_{k}": v for k, v in means.items()})
    benchmark.extra_info["kb_records"] = len(bench_knowledge_base)
    # Shape assertions: advisor beats random, is competitive with the fixed choice,
    # and stays close to the oracle.
    assert means["advisor"] >= means["random"]
    assert means["advisor"] >= means["fixed"] - 0.03
    assert means["oracle"] - means["advisor"] < 0.10
    assert rules
