"""EXP-P1-DUPLICATES — Phase 1, duplicate-records criterion.

Exact and fuzzy duplicates are appended at increasing rates.  Expected shape:
cross-validated scores become optimistically biased (duplicates leak between
train and test folds), which is precisely the misleading signal a non-expert
would trust — and the duplication criterion flags it.
"""

from __future__ import annotations

import pytest

from benchmarks._sweep import sensitivity_sweep, sweep_rows
from benchmarks.conftest import FAST_ALGORITHMS, print_table, reference_dataset
from repro.core.injection import DuplicateInjector
from repro.quality import DuplicationCriterion

SEVERITIES = (0.0, 0.1, 0.2, 0.3)


def run_experiment():
    dataset = reference_dataset()
    sweep = sensitivity_sweep(dataset, "duplication", SEVERITIES, FAST_ALGORITHMS)
    criterion = DuplicationCriterion()
    exact_injector = DuplicateInjector(fuzzy=False)
    fuzzy_injector = DuplicateInjector(fuzzy=True)
    detection_rows = []
    for severity in SEVERITIES:
        exact = criterion.measure(exact_injector.apply(dataset, severity, seed=1))
        fuzzy = criterion.measure(fuzzy_injector.apply(dataset, severity, seed=1))
        detection_rows.append([f"rate={severity:.0%}", exact.score, fuzzy.score])
    return sweep, detection_rows


@pytest.mark.benchmark(group="phase1")
def test_p1_duplicates(benchmark):
    sweep, detection_rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "EXP-P1-DUPLICATES: cross-validated accuracy vs duplicate rate (optimistic bias)",
        ["algorithm"] + [f"duplicates={s:.0%}" for s in SEVERITIES],
        sweep_rows(sweep),
    )
    print_table(
        "EXP-P1-DUPLICATES: duplication criterion score (exact vs fuzzy copies)",
        ["variant", "score_exact_copies", "score_fuzzy_copies"],
        detection_rows,
    )

    # The criterion detects the injected duplicates (score decreases with rate).
    exact_scores = [row[1] for row in detection_rows]
    assert exact_scores == sorted(exact_scores, reverse=True)
    # k-NN benefits most from leaked duplicates (its nearest neighbour is often the copy).
    knn_gain = sweep["knn"][max(SEVERITIES)] - sweep["knn"][0.0]
    benchmark.extra_info["knn_optimistic_gain"] = knn_gain
    assert knn_gain >= -0.05
