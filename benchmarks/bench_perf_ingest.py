"""BENCH-PERF-INGEST — incremental append+refresh vs full recompute timings.

Times one feed cycle against a municipal-budget-style fact table at 100k base
rows with a 1k-row delta batch: append the batch (extending the base's
encoded views) and refresh the derived state — a quality profile, a cube
aggregate and a KPI scoreboard — through the incremental tier
(:mod:`repro.feeds.incremental`), versus recomputing everything from scratch
over the cold merged data.  Two workloads are timed:

``refresh``
    Profile over the incrementalizable-or-cheap criteria (completeness,
    consistency, duplication, balance, dimensionality) plus the per-district
    cube aggregate and KPI scoreboard.  This is the guarded headline.
``all_criteria``
    The same cycle with the full default profile.  Accuracy, correlation and
    outliers have no delta form and fall back to an O(n) encoded recompute
    each refresh, diluting the ratio — recorded for honesty, not guarded.

Incremental timings include the append itself (schema coercion, array
concatenation, encoded-view extension); the full-recompute side gets the
merged dataset for free and pays only the cold encode plus the batch
recomputes.  Results — speedups plus bit-identity checks of every refreshed
artefact against the batch recompute — are written to
``BENCH_perf_ingest.json`` at the repository root.

The JSON also records a ``quick`` section at a reduced size, used by the CI
perf guard: ``python benchmarks/bench_perf_ingest.py --quick`` reruns it and
fails when the guarded speedup drops below half the recorded baseline
(ratios, not wall-clock, so slower CI runners don't false-alarm) or when any
refreshed result stops being bit-identical to the recompute.

Run the full benchmark with ``pytest benchmarks/bench_perf_ingest.py -s`` or
directly with ``python benchmarks/bench_perf_ingest.py``.
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import time
from pathlib import Path

import numpy as np

from repro.bi import Cube, Dimension, KPI, Measure, evaluate_kpis_by_level
from repro.feeds import (
    IncrementalKPIBoard,
    IncrementalProfile,
    append_rows,
    incremental_cube_aggregate,
)
from repro.quality import measure_quality
from repro.tabular.dataset import ColumnType, Dataset
from repro.tabular.encoded import _CACHE_ATTR

FACT_ROWS = 100_000
DELTA_ROWS = 1_000
#: The acceptance bar: append+refresh at 100k+1k must be at least this many
#: times faster than the full recompute.
MIN_SPEEDUP_AT_100K = 10.0

#: Reduced-size rerun used by the CI perf guard (see ``--quick``).
QUICK_ROWS = 5_000
QUICK_DELTA = 100
#: A quick workload fails the guard when its speedup drops below
#: ``baseline_speedup / QUICK_REGRESSION_FACTOR``.
QUICK_REGRESSION_FACTOR = 2.0
#: The workloads the guard checks (``all_criteria`` is recorded but not
#: guarded: its fallback criteria recompute O(n) state on both sides).
GUARDED_WORKLOADS = ("refresh",)

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_ingest.json"

_DISTRICTS = [f"district_{i:02d}" for i in range(20)]
_CATEGORIES = ["transport", "health", "education", "culture", "housing", "parks", "safety", "it"]

#: The incrementalizable-or-cheap profile of the guarded workload.
_CHEAP_CRITERIA = ["completeness", "consistency", "duplication", "balance", "dimensionality"]

_KPIS = [
    KPI("avg_rate", "rate", target=0.6),
    KPI("avg_amount", "amount", target=300_000.0, higher_is_better=False, tolerance=0.2),
]


def _dataset(n_rows: int, seed: int = 0) -> Dataset:
    """A budget-style fact table with ~5% missing cells in a key and a measure."""
    rng = np.random.default_rng(seed)
    district = [
        None if gap else _DISTRICTS[i]
        for gap, i in zip(rng.random(n_rows) < 0.05, rng.integers(len(_DISTRICTS), size=n_rows))
    ]
    category = [_CATEGORIES[i] for i in rng.integers(len(_CATEGORIES), size=n_rows)]
    year = (2019.0 + rng.integers(5, size=n_rows)).astype(float)
    amount = np.round(rng.uniform(1_000, 500_000, size=n_rows), 2)
    amount[rng.random(n_rows) < 0.05] = np.nan
    rate = np.round(rng.uniform(0.0, 1.2, size=n_rows), 4)
    return Dataset.from_dict(
        {
            "district": district,
            "category": category,
            "year": year.tolist(),
            "amount": amount.tolist(),
            "rate": rate.tolist(),
        },
        name="budget_facts",
        ctypes={
            "district": ColumnType.CATEGORICAL,
            "category": ColumnType.CATEGORICAL,
            "year": ColumnType.NUMERIC,
            "amount": ColumnType.NUMERIC,
            "rate": ColumnType.NUMERIC,
        },
    )


def _delta(n_rows: int, seed: int = 1) -> list[dict]:
    """A feed batch: same schema, one brand-new district level, some gaps."""
    rng = np.random.default_rng(seed)
    districts = _DISTRICTS + ["district_NEW"]
    rows = []
    for i in range(n_rows):
        rows.append(
            {
                "district": None if rng.random() < 0.05 else districts[int(rng.integers(len(districts)))],
                "category": _CATEGORIES[int(rng.integers(len(_CATEGORIES)))],
                "year": float(2019 + int(rng.integers(5))),
                "amount": float("nan") if rng.random() < 0.05 else round(float(rng.uniform(1_000, 500_000)), 2),
                "rate": round(float(rng.uniform(0.0, 1.2)), 4),
            }
        )
    return rows


def _cube(dataset: Dataset) -> Cube:
    return Cube(
        dataset,
        dimensions=[
            Dimension("district", ("district",)),
            Dimension("category", ("category",)),
            Dimension("year", ("year",)),
        ],
        measures=[
            Measure("total", "amount", "sum"),
            Measure("mean_rate", "rate", "mean"),
            Measure("n", "amount", "count"),
        ],
    )


def _build_boards(base: Dataset, criteria: list[str] | None):
    """The incremental state for one feed cycle (setup cost, not timed)."""
    return (
        IncrementalProfile(base, criteria=criteria),
        incremental_cube_aggregate(_cube(base), ["district"]),
        IncrementalKPIBoard(_KPIS, _cube(base), "district"),
    )


def _drop_encoding(dataset: Dataset) -> None:
    """Forget the dataset's cached encoding so the next run pays for it."""
    if hasattr(dataset, _CACHE_ATTR):
        delattr(dataset, _CACHE_ATTR)


def _bits(value):
    """A bit-exact comparison key: floats by their IEEE-754 bytes."""
    if isinstance(value, float):
        return ("float", struct.pack("<d", value))
    return (type(value).__name__, value)


def _identical(a: Dataset, b: Dataset) -> bool:
    """Bit-exact dataset equality: column order, ctypes, row order, float bits."""
    if a.column_names != b.column_names or a.n_rows != b.n_rows:
        return False
    for name in a.column_names:
        if a[name].ctype != b[name].ctype:
            return False
        if any(_bits(x) != _bits(y) for x, y in zip(a[name].tolist(), b[name].tolist())):
            return False
    return True


def _profile_json(profile) -> str:
    return json.dumps(profile.to_json_dict(), sort_keys=True)


def _compare_one(n_rows: int, delta_rows: int, criteria: list[str] | None, repeats: int) -> dict:
    """Time one feed cycle incrementally vs as a full recompute."""
    delta = _delta(delta_rows)
    best_incremental = float("inf")
    outputs = None
    for _ in range(repeats):
        base = _dataset(n_rows)
        boards = _build_boards(base, criteria)
        profile_board, cube_board, kpi_board = boards
        start = time.perf_counter()
        merged = append_rows(base, delta)
        refreshed = (
            profile_board.refresh(merged),
            cube_board.refresh(merged),
            kpi_board.refresh(merged),
        )
        best_incremental = min(best_incremental, time.perf_counter() - start)
        outputs = (merged, refreshed)
    merged, (profile_inc, cube_inc, kpi_inc) = outputs

    delta_dataset = Dataset.from_rows(
        delta, ctypes={c.name: c.ctype for c in merged.columns}, column_order=merged.column_names
    )
    merged_cold = _dataset(n_rows).concat(delta_dataset)
    best_full = float("inf")
    for _ in range(repeats):
        _drop_encoding(merged_cold)
        start = time.perf_counter()
        full = (
            measure_quality(merged_cold, criteria),
            _cube(merged_cold).aggregate(["district"]),
            evaluate_kpis_by_level(_KPIS, _cube(merged_cold), "district"),
        )
        best_full = min(best_full, time.perf_counter() - start)
    profile_full, cube_full, kpi_full = full

    identical = (
        _profile_json(profile_inc) == _profile_json(profile_full)
        and _identical(cube_inc, cube_full)
        and _identical(kpi_inc, kpi_full)
    )
    return {
        "incremental_s": best_incremental,
        "full_s": best_full,
        "speedup": best_full / best_incremental if best_incremental > 0 else float("inf"),
        "identical_to_full_recompute": identical,
    }


def _compare_cycle(n_rows: int, delta_rows: int, repeats: int = 1) -> dict:
    return {
        "refresh": _compare_one(n_rows, delta_rows, _CHEAP_CRITERIA, repeats),
        "all_criteria": _compare_one(n_rows, delta_rows, None, repeats),
    }


def run_quick_case() -> dict:
    return _compare_cycle(QUICK_ROWS, QUICK_DELTA, repeats=3)


def run_benchmark() -> dict:
    results: dict = {"sizes": {}}
    results["sizes"][f"{FACT_ROWS}+{DELTA_ROWS}"] = _compare_cycle(FACT_ROWS, DELTA_ROWS, repeats=3)
    results["quick"] = {"n_rows": QUICK_ROWS, "delta_rows": QUICK_DELTA, **run_quick_case()}
    return results


def write_results(results: dict) -> Path:
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return _RESULT_PATH


def _print_results(results: dict) -> None:
    try:
        from benchmarks.conftest import print_table
    except ModuleNotFoundError:  # running as a plain script
        def print_table(title, header, rows):
            print(f"\n=== {title} ===")
            print("  ".join(header))
            for row in rows:
                print("  ".join(f"{c:.3f}" if isinstance(c, float) else str(c) for c in row))

    rows = []
    for size, entry in results["sizes"].items():
        for name, stats in entry.items():
            rows.append(
                [
                    f"{name}@{size}",
                    stats["incremental_s"],
                    stats["full_s"],
                    stats["speedup"],
                    "yes" if stats["identical_to_full_recompute"] else "NO",
                ]
            )
    print_table(
        "BENCH-PERF-INGEST: append+refresh vs full recompute",
        ["workload", "incremental_s", "full_s", "speedup", "identical"],
        rows,
    )


def run_quick_guard(baseline_path: Path = _RESULT_PATH) -> int:
    """Rerun the quick case and compare against the recorded baseline.

    Returns a process exit code: 0 when every workload is still bit-identical
    and the guarded workloads are within ``QUICK_REGRESSION_FACTOR`` of their
    recorded speedups, 1 otherwise.
    """
    if not baseline_path.exists():
        print(f"perf guard: no baseline at {baseline_path}; run the full benchmark first")
        return 1
    baseline = json.loads(baseline_path.read_text())
    quick = baseline.get("quick", {})
    if quick.get("n_rows") != QUICK_ROWS or any(
        name not in quick for name in ("refresh", "all_criteria")
    ):
        print("perf guard: baseline quick case is stale; rerun the full benchmark")
        return 1
    current = run_quick_case()
    failed = False
    for name, stats in current.items():
        verdict = "ok"
        if not stats["identical_to_full_recompute"]:
            verdict = "DIVERGED from the full recompute"
        elif name in GUARDED_WORKLOADS:
            floor = quick[name]["speedup"] / QUICK_REGRESSION_FACTOR
            if stats["speedup"] < floor:
                verdict = f"REGRESSED (floor {floor:.1f}x)"
        print(
            f"perf guard: {name}@{QUICK_ROWS}+{QUICK_DELTA}: {stats['speedup']:.1f}x "
            f"(baseline {quick[name]['speedup']:.1f}x) {verdict}"
        )
        failed = failed or verdict != "ok"
    if failed:
        print("perf guard: FAILED for the incremental ingestion tier")
        return 1
    print("perf guard: incremental ingestion within budget")
    return 0


def test_perf_ingest():
    results = run_benchmark()
    path = write_results(results)
    _print_results(results)
    for size, entry in results["sizes"].items():
        for name, stats in entry.items():
            assert stats["identical_to_full_recompute"], (
                f"{name}@{size}: refreshed results diverged from the full recompute"
            )
    speedup = results["sizes"][f"{FACT_ROWS}+{DELTA_ROWS}"]["refresh"]["speedup"]
    assert speedup >= MIN_SPEEDUP_AT_100K, (
        f"append+refresh speedup at {FACT_ROWS}+{DELTA_ROWS} rows is {speedup:.1f}x, "
        f"below the {MIN_SPEEDUP_AT_100K}x bar"
    )
    print(f"\nresults written to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="rerun the reduced-size perf-guard case against the recorded baseline",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run_quick_guard()
    test_perf_ingest()
    return 0


if __name__ == "__main__":
    sys.exit(main())
